"""M-tree-backed :class:`~repro.index.base.NeighborIndex` (Section 5.1).

This adapter is what the DisC heuristics run against when measuring node
accesses.  On top of the raw :class:`~repro.mtree.tree.MTree` it adds the
paper's algorithm-facing machinery:

* iteration in left-to-right **leaf order** (locality for Basic-DisC),
* **grey-subtree pruning**: the index subscribes to a
  :class:`~repro.core.coloring.Coloring` and maintains per-leaf white
  counters; when a leaf runs out of white objects it is marked grey and
  range queries with ``prune=True`` skip grey subtrees,
* **build-time white-neighborhood counting**: when a radius is supplied
  at construction, each insert runs a range query on the partial tree
  and accumulates ``|N_r|`` for all objects — the paper reports this
  saves up to 45% of the accesses compared to computing the sizes after
  the build,
* **bottom-up queries** and Fast-C's stop-at-grey shortcut.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.coloring import Color, Coloring
from repro.engines.registry import EngineCapabilities, register_engine
from repro.index.base import NeighborIndex
from repro.mtree.tree import MTree

__all__ = ["MTreeIndex"]


@register_engine(EngineCapabilities(
    name="mtree",
    description="the paper's substrate: any metric, pruning/zooming "
    "accelerations, exact node-access accounting",
    metrics="any",
    supports_csr=False,
    supports_blocked=False,
    cost_fidelity="node-access",
    csr_unsupported_reason=(
        "the M-tree has no CSR engine (its per-query node-access "
        "accounting is the paper's cost metric); pick a simple "
        'engine for accelerate=True or use accelerate="auto"'
    ),
))
class MTreeIndex(NeighborIndex):
    """Neighbor index backed by an M-tree.

    Parameters
    ----------
    points, metric:
        The dataset (insertion order = row order; generators pre-shuffle).
    capacity, split_policy:
        Passed to :class:`MTree` (paper defaults: 50, "MinOverlap").
    build_radius:
        If given, white-neighborhood sizes for this radius are computed
        during construction (Section 5.1's optimisation).  The accesses
        this consumes are charged to the first caller of
        :meth:`neighborhood_sizes` so algorithm costs stay comparable
        with the compute-after-build alternative.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric,
        capacity: int = 50,
        split_policy="min_overlap",
        build_radius: Optional[float] = None,
    ):
        super().__init__(points, metric)
        self.tree = MTree(self.metric, capacity=capacity, split_policy=split_policy)
        self.tree.stats = self.stats  # share one counter set
        self._coloring: Optional[Coloring] = None
        self._build_radius = build_radius
        self._build_sizes: Optional[np.ndarray] = None
        self._precompute_cost_pending = 0

        if build_radius is not None:
            sizes = np.zeros(self.n, dtype=np.int64)
            before = self.stats.node_accesses
            for object_id, point in enumerate(self.points):
                neighbors = self.tree.range_query_point(point, build_radius)
                sizes[object_id] += len(neighbors)
                for other in neighbors:
                    sizes[other] += 1
                self.tree.insert(object_id, point)
            self._build_sizes = sizes
            self._precompute_cost_pending = self.stats.node_accesses - before
            # Keep query counters clean for the algorithm run; the cost is
            # re-charged when the sizes are consumed.
            self.stats.node_accesses = before
        else:
            for object_id, point in enumerate(self.points):
                self.tree.insert(object_id, point)

    # ------------------------------------------------------------------
    # NeighborIndex protocol
    # ------------------------------------------------------------------
    def ids(self) -> Iterable[int]:
        """Left-to-right leaf order — the paper's 'arbitrary' order."""
        return self.tree.objects_in_leaf_order()

    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        self.stats.range_queries += 1
        return self.tree.range_query_point(point, radius)

    def range_query(
        self,
        center_id: int,
        radius: float,
        *,
        include_self: bool = False,
        prune: bool = False,
        bottom_up: bool = False,
        stop_at_grey: bool = False,
    ) -> List[int]:
        """``N_r(center_id)``, with the paper's M-tree variations.

        ``prune``
            skip grey subtrees (sound for recoloring workloads).
        ``bottom_up``
            start from the object's leaf and climb (Section 5 item (ii)).
        ``stop_at_grey``
            Fast-C: with ``bottom_up``, stop climbing at the first grey
            internal node (may miss distant neighbors — by design).
        """
        self.stats.range_queries += 1
        if bottom_up:
            result = self.tree.range_query_bottom_up(
                center_id, radius, prune_grey=prune, stop_at_grey=stop_at_grey
            )
        else:
            result = self.tree.range_query_point(
                self.points[center_id], radius, prune_grey=prune
            )
        if include_self:
            if center_id not in result:
                result.append(center_id)
            return result
        return [other for other in result if other != center_id]

    def range_query_batch(
        self,
        ids,
        radius: float,
        *,
        include_self: bool = False,
        per_query_stats: bool = False,
    ) -> List[np.ndarray]:
        """``N_r`` for many centers via one batched tree descent.

        The descent shares node visits across queries while charging
        the *same* totals as the per-query loop — each node bills one
        access per query that would have visited it — so aggregate
        node-access results (the paper's cost metric) are unchanged.
        ``per_query_stats=True`` falls back to the per-query loop for
        callers that attribute counter deltas to individual queries
        (e.g. snapshotting between calls).
        """
        if per_query_stats:
            return super().range_query_batch(
                ids, radius, include_self=include_self
            )
        ids = np.asarray(ids, dtype=np.int64)
        self.stats.range_queries += ids.size
        raw = self.tree.range_query_batch_points(self.points[ids], radius)
        out: List[np.ndarray] = []
        for center, result in zip(ids, raw):
            center = int(center)
            if include_self:
                if center not in result:
                    result.append(center)
            else:
                result = [other for other in result if other != center]
            out.append(np.asarray(result, dtype=np.int64))
        return out

    def knn_query(self, point: np.ndarray, k: int) -> List[int]:
        """The k nearest objects to a free point (best-first search)."""
        self.stats.range_queries += 1
        return self.tree.knn_query(np.asarray(point), k)

    def neighborhood_sizes(self, radius: float) -> np.ndarray:
        """``|N_r|`` per object; uses the build-time counts when they
        match the requested radius."""
        if self._build_sizes is not None and radius == self._build_radius:
            # Charge the build-time query cost exactly once.
            self.stats.node_accesses += self._precompute_cost_pending
            self.stats.extra["precompute_cost"] = self._precompute_cost_pending
            self._precompute_cost_pending = 0
            return self._build_sizes.copy()
        sizes = np.empty(self.n, dtype=np.int64)
        for object_id in range(self.n):
            sizes[object_id] = len(self.range_query(object_id, radius))
        return sizes

    # ------------------------------------------------------------------
    # Coloring integration (pruning rule)
    # ------------------------------------------------------------------
    @property
    def supports_pruning(self) -> bool:
        return True

    def attach_coloring(self, coloring: Coloring) -> None:
        """Subscribe to ``coloring`` and initialise white counters."""
        if coloring.n != self.n:
            raise ValueError(
                f"coloring tracks {coloring.n} objects, index holds {self.n}"
            )
        if self._coloring is not None:
            self.detach_coloring()
        self._coloring = coloring
        self.tree.freeze()
        self.tree.reset_grey()
        for leaf in self.tree.leaves():
            leaf.white_count = sum(
                1 for entry in leaf.entries if coloring.is_white(entry.object_id)
            )
        for leaf in self.tree.leaves():
            if leaf.white_count == 0:
                self.tree.mark_grey_upward(leaf)
        coloring.add_listener(self._on_color_change)

    def detach_coloring(self) -> None:
        if self._coloring is None:
            return
        self._coloring.remove_listener(self._on_color_change)
        self._coloring = None
        self.tree.reset_grey()
        self.tree.unfreeze()

    def _on_color_change(self, object_id: int, old: Color, new: Color) -> None:
        if (old == Color.WHITE) == (new == Color.WHITE):
            return
        leaf = self.tree.leaf_of[object_id]
        if new == Color.WHITE:
            leaf.white_count += 1
            self.tree.clear_grey_upward(leaf)
        else:
            leaf.white_count -= 1
            if leaf.white_count == 0:
                self.tree.mark_grey_upward(leaf)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"MTreeIndex(n={self.n}, metric={self.metric.name}, "
            f"capacity={self.tree.capacity}, policy={self.tree.policy.name})"
        )

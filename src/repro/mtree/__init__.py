"""M-tree substrate (paper Section 5): tree, split policies, statistics,
and the algorithm-facing :class:`MTreeIndex`."""

from repro.mtree.index import MTreeIndex
from repro.mtree.node import LeafEntry, Node, RoutingEntry
from repro.mtree.split import (
    BalancedPolicy,
    MaxSpreadPolicy,
    MinOverlapPolicy,
    RandomPolicy,
    SplitPolicy,
    get_split_policy,
)
from repro.mtree.stats import TreeProfile, fat_factor, profile_tree
from repro.mtree.tree import MTree

__all__ = [
    "MTree",
    "MTreeIndex",
    "Node",
    "LeafEntry",
    "RoutingEntry",
    "SplitPolicy",
    "MinOverlapPolicy",
    "MaxSpreadPolicy",
    "BalancedPolicy",
    "RandomPolicy",
    "get_split_policy",
    "fat_factor",
    "profile_tree",
    "TreeProfile",
]

"""M-tree nodes and entries (Section 5).

An M-tree partitions a metric space around *pivot* objects: every routing
entry in an internal node stores a pivot point, a covering radius that
bounds the distance from the pivot to anything in its subtree, the
distance from the pivot to its parent pivot (used for triangle-inequality
pruning), and a child pointer.  Leaf entries store the indexed objects
and their distance to the leaf's pivot.

Two reproduction-specific extensions from Section 5.1/5.2 live here too:

* leaves form a doubly-linked chain so algorithms can scan all objects in
  a single left-to-right pass, and
* every node tracks whether its subtree holds any *white* objects; a
  subtree with none is **grey** and range queries may skip it (the
  pruning rule).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["LeafEntry", "RoutingEntry", "Node"]


class LeafEntry:
    """An indexed object inside a leaf node."""

    __slots__ = ("object_id", "point", "parent_distance")

    def __init__(self, object_id: int, point: np.ndarray, parent_distance: float = 0.0):
        self.object_id = object_id
        self.point = point
        self.parent_distance = parent_distance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LeafEntry(id={self.object_id}, d_parent={self.parent_distance:.4f})"


class RoutingEntry:
    """A pivot + covering ball + child pointer inside an internal node."""

    __slots__ = ("pivot", "covering_radius", "child", "parent_distance")

    def __init__(
        self,
        pivot: np.ndarray,
        covering_radius: float,
        child: "Node",
        parent_distance: float = 0.0,
    ):
        self.pivot = pivot
        self.covering_radius = covering_radius
        self.child = child
        self.parent_distance = parent_distance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoutingEntry(r_cov={self.covering_radius:.4f}, "
            f"d_parent={self.parent_distance:.4f}, child={self.child!r})"
        )


Entry = Union[LeafEntry, RoutingEntry]


class Node:
    """An M-tree node (leaf or internal).

    ``white_count`` (leaves) counts white objects stored here;
    ``grey`` caches the Section 5.1 pruning flag: a leaf is grey when it
    holds no white objects, an internal node when all children are grey.
    """

    __slots__ = (
        "is_leaf",
        "entries",
        "parent_node",
        "parent_entry",
        "next_leaf",
        "prev_leaf",
        "white_count",
        "grey",
        "_pivot_matrix",
    )

    def __init__(self, is_leaf: bool, entries: Optional[List[Entry]] = None):
        self.is_leaf = is_leaf
        self.entries: List[Entry] = entries if entries is not None else []
        self.parent_node: Optional["Node"] = None
        self.parent_entry: Optional[RoutingEntry] = None
        self.next_leaf: Optional["Node"] = None
        self.prev_leaf: Optional["Node"] = None
        self.white_count = 0
        self.grey = False
        self._pivot_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def pivot_point(self) -> Optional[np.ndarray]:
        """The routing pivot of this node, None for the root."""
        return self.parent_entry.pivot if self.parent_entry is not None else None

    def entry_points(self) -> np.ndarray:
        """Stacked entry coordinates (object points or child pivots).

        Cached because range queries evaluate the whole node at once with
        vectorised metric calls; :meth:`invalidate` drops the cache on
        every structural change.
        """
        if self._pivot_matrix is None:
            if self.is_leaf:
                self._pivot_matrix = np.stack([e.point for e in self.entries])
            else:
                self._pivot_matrix = np.stack([e.pivot for e in self.entries])
        return self._pivot_matrix

    def covering_radii(self) -> np.ndarray:
        """Covering radii of all routing entries (internal nodes only)."""
        return np.array([e.covering_radius for e in self.entries], dtype=float)

    def invalidate(self) -> None:
        """Drop cached matrices after entries change."""
        self._pivot_matrix = None

    def add_entry(self, entry: Entry) -> None:
        self.entries.append(entry)
        if not self.is_leaf:
            entry.child.parent_node = self
            entry.child.parent_entry = entry
        self.invalidate()

    def replace_entries(self, entries: List[Entry]) -> None:
        self.entries = entries
        if not self.is_leaf:
            for entry in entries:
                entry.child.parent_node = self
                entry.child.parent_entry = entry
        self.invalidate()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "Leaf" if self.is_leaf else "Internal"
        return f"{kind}Node(entries={len(self.entries)}, grey={self.grey})"

"""M-tree quality statistics: the fat-factor of Traina et al.

Section 6 of the paper quantifies node overlap with the *fat-factor*

    f(T) = (Z - n*h) / n * 1 / (m - h)

where ``Z`` is the total node accesses needed to answer a point query for
every stored object, ``n`` the object count, ``h`` the tree height and
``m`` the node count.  An overlap-free tree answers every point query
along a single root-to-leaf path (Z = n*h, f = 0); the worst tree visits
every node for every query (f = 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mtree.tree import MTree

__all__ = ["fat_factor", "TreeProfile", "profile_tree"]


def fat_factor(tree: MTree) -> float:
    """Traina et al.'s fat-factor in ``[0, 1]``.

    Point queries here bypass the query-stats counters so measuring the
    tree does not pollute experiment accounting.
    """
    n = tree.size
    if n == 0:
        return 0.0
    h = tree.height()
    m = tree.node_count()
    if m <= h:
        return 0.0  # single root-to-leaf path: no overlap is possible
    total = 0
    for leaf in tree.leaves():
        for entry in leaf.entries:
            total += tree.point_query_accesses(entry.point)
    return (total - n * h) / n / (m - h)


@dataclass
class TreeProfile:
    """Summary of a built tree, used in experiment reports."""

    size: int
    height: int
    node_count: int
    leaf_count: int
    capacity: int
    policy: str
    fat_factor: float

    def __str__(self) -> str:
        return (
            f"MTree[n={self.size} h={self.height} nodes={self.node_count} "
            f"leaves={self.leaf_count} c={self.capacity} policy={self.policy} "
            f"f={self.fat_factor:.3f}]"
        )


def profile_tree(tree: MTree) -> TreeProfile:
    """Compute a :class:`TreeProfile` (includes the fat-factor)."""
    return TreeProfile(
        size=tree.size,
        height=tree.height(),
        node_count=tree.node_count(),
        leaf_count=sum(1 for _ in tree.leaves()),
        capacity=tree.capacity,
        policy=tree.policy.name,
        fat_factor=fat_factor(tree),
    )

"""M-tree node splitting policies (Section 5).

A splitting policy decides, when a node overflows past capacity ``c``:

* **promote** — which two pivot points will index the two new nodes in
  the parent, and
* **partition** — how the ``c + 1`` entries are distributed between them.

The paper evaluates trees built with policies of varying node overlap
(Figure 10, quantified by the *fat-factor*).  We implement the four
policies described there:

``MinOverlapPolicy``
    the paper's best: promote the current pivot of the overflowed node
    and the entry farthest from it; assign every entry to the closest
    pivot.  ("MinOverlap")
``MaxSpreadPolicy``
    promote the two entries with the greatest pairwise distance
    (increased fat-factor in the paper's experiments).
``BalancedPolicy``
    like MaxSpreadPolicy but distributes entries in alternating
    nearest-first rounds so both nodes get an equal share (even higher
    fat-factor).
``RandomPolicy``
    promote two entries at random (the highest fat-factor).

Policies are stateless except for ``RandomPolicy``'s RNG; all operate on
entry coordinate matrices with vectorised metric calls.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

import numpy as np

from repro.distance import Metric
from repro.mtree.node import Entry, Node

__all__ = [
    "SplitPolicy",
    "MinOverlapPolicy",
    "MaxSpreadPolicy",
    "BalancedPolicy",
    "RandomPolicy",
    "get_split_policy",
]


def _entry_point(entry: Entry) -> np.ndarray:
    return entry.point if hasattr(entry, "point") else entry.pivot


class SplitPolicy(abc.ABC):
    """Strategy object consulted by :class:`repro.mtree.tree.MTree`."""

    name: str = "abstract"

    @abc.abstractmethod
    def promote(
        self, node: Node, entries: List[Entry], metric: Metric
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return the two pivot points for the post-split nodes."""

    def partition(
        self,
        entries: List[Entry],
        pivot1: np.ndarray,
        pivot2: np.ndarray,
        metric: Metric,
    ) -> Tuple[List[Entry], List[Entry]]:
        """Distribute entries between the two pivots (closest-first).

        Guarantees both sides are non-empty: if a pivot would end up
        empty (possible with duplicate points), the closest entry of the
        other side is moved over.
        """
        points = np.stack([_entry_point(e) for e in entries])
        d1 = metric.to_point(points, pivot1)
        d2 = metric.to_point(points, pivot2)
        mask = d1 <= d2
        group1 = [e for e, take in zip(entries, mask) if take]
        group2 = [e for e, take in zip(entries, mask) if not take]
        if not group1:
            take = int(np.argmin(d1))
            group1.append(entries[take])
            group2 = [e for e in entries if e is not entries[take]]
        elif not group2:
            take = int(np.argmin(d2))
            group2.append(entries[take])
            group1 = [e for e in entries if e is not entries[take]]
        return group1, group2

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class MinOverlapPolicy(SplitPolicy):
    """The paper's "MinOverlap": keep the current pivot, promote the
    farthest entry as the second pivot, assign entries to the closest."""

    name = "min_overlap"

    def promote(self, node: Node, entries, metric):
        current = node.pivot_point
        if current is None:
            # Root overflow: no inherited pivot; fall back to the first entry.
            current = _entry_point(entries[0])
        points = np.stack([_entry_point(e) for e in entries])
        distances = metric.to_point(points, current)
        farthest = int(np.argmax(distances))
        return current, _entry_point(entries[farthest])


class MaxSpreadPolicy(SplitPolicy):
    """Promote the two entries with the greatest pairwise distance."""

    name = "max_spread"

    def promote(self, node: Node, entries, metric):
        points = np.stack([_entry_point(e) for e in entries])
        matrix = metric.pairwise(points)
        i, j = np.unravel_index(int(np.argmax(matrix)), matrix.shape)
        return points[i], points[j]


class BalancedPolicy(MaxSpreadPolicy):
    """MaxSpread promotion + balanced alternating partition.

    Each round assigns the entry closest to pivot1 to group1 and the
    entry closest to pivot2 to group2, yielding equal-size halves and —
    because proximity is ignored for half the assignments — larger
    overlap, hence a larger fat-factor.
    """

    name = "balanced"

    def partition(self, entries, pivot1, pivot2, metric):
        points = np.stack([_entry_point(e) for e in entries])
        d1 = list(metric.to_point(points, pivot1))
        d2 = list(metric.to_point(points, pivot2))
        remaining = set(range(len(entries)))
        group1: List[Entry] = []
        group2: List[Entry] = []
        turn_one = True
        while remaining:
            if turn_one:
                best = min(remaining, key=lambda k: d1[k])
                group1.append(entries[best])
            else:
                best = min(remaining, key=lambda k: d2[k])
                group2.append(entries[best])
            remaining.discard(best)
            turn_one = not turn_one
        return group1, group2


class RandomPolicy(BalancedPolicy):
    """Promote two distinct random entries, partition in equal halves.

    The paper builds its policy ladder cumulatively — MinOverlap, then
    max-distance promotion, then equal-count partitioning, and "finally,
    selecting the new pivots randomly produced trees with the highest
    fat-factor among all policies" — so random promotion keeps the
    balanced partition of the previous rung.
    """

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def promote(self, node: Node, entries, metric):
        i, j = self._rng.choice(len(entries), size=2, replace=False)
        return _entry_point(entries[int(i)]), _entry_point(entries[int(j)])


_POLICIES = {
    "min_overlap": MinOverlapPolicy,
    "minoverlap": MinOverlapPolicy,
    "max_spread": MaxSpreadPolicy,
    "balanced": BalancedPolicy,
    "random": RandomPolicy,
}


def get_split_policy(name, **kwargs) -> SplitPolicy:
    """Resolve a policy name (or pass through an instance)."""
    if isinstance(name, SplitPolicy):
        return name
    try:
        return _POLICIES[str(name).lower()](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown split policy {name!r}; available: {sorted(set(_POLICIES))}"
        ) from None

"""The M-tree: a balanced metric index (Section 5).

Supports dynamic inserts with configurable node-splitting policies,
top-down and bottom-up range queries with triangle-inequality pruning,
left-to-right leaf chaining, exact point queries (for the fat-factor),
and the grey-subtree pruning rule of Section 5.1.

Cost accounting: every node visited by a query increments
``stats.node_accesses`` — the paper's cost metric; structural accesses
during insertion go to ``stats.build_node_accesses`` so query costs stay
separable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.distance import get_metric
from repro.index.base import IndexStats
from repro.mtree.node import LeafEntry, Node, RoutingEntry
from repro.mtree.split import get_split_policy

__all__ = ["MTree"]


class MTree:
    """A dynamic M-tree over points of any dimensionality.

    Parameters
    ----------
    metric:
        Distance metric (must satisfy the triangle inequality — all
        pruning here depends on it).
    capacity:
        Maximum entries per node (the paper's default is 50).
    split_policy:
        Name or instance of a :class:`repro.mtree.split.SplitPolicy`.
    """

    def __init__(self, metric, capacity: int = 50, split_policy="min_overlap"):
        if capacity < 2:
            raise ValueError(f"capacity must be at least 2, got {capacity}")
        self.metric = get_metric(metric)
        self.capacity = int(capacity)
        self.policy = get_split_policy(split_policy)
        self.root = Node(is_leaf=True)
        self.first_leaf = self.root
        self.size = 0
        self.stats = IndexStats()
        self.leaf_of: Dict[int, Node] = {}
        self._frozen = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, object_id: int, point: np.ndarray) -> None:
        """Insert one object; splits propagate upward as needed."""
        if self._frozen:
            raise RuntimeError(
                "tree is frozen (a coloring is attached); inserts would "
                "invalidate white counters"
            )
        if object_id in self.leaf_of:
            raise ValueError(f"object id {object_id} already indexed")
        point = np.asarray(point)
        leaf = self._choose_leaf(point)
        pivot = leaf.pivot_point
        parent_distance = (
            self.metric.distance(pivot, point) if pivot is not None else 0.0
        )
        leaf.entries.append(LeafEntry(object_id, point, parent_distance))
        leaf.invalidate()
        self.leaf_of[object_id] = leaf
        self.size += 1
        if len(leaf.entries) > self.capacity:
            self._split(leaf)

    def _choose_leaf(self, point: np.ndarray) -> Node:
        """Descend to the best leaf, enlarging covering radii en route.

        Prefers a subtree whose ball already contains the point (closest
        pivot wins); otherwise the one needing the smallest enlargement.
        """
        node = self.root
        while not node.is_leaf:
            self.stats.build_node_accesses += 1
            distances = self.metric.to_point(node.entry_points(), point)
            radii = node.covering_radii()
            inside = distances <= radii
            if inside.any():
                pick = int(np.argmin(np.where(inside, distances, np.inf)))
            else:
                pick = int(np.argmin(distances - radii))
                node.entries[pick].covering_radius = float(distances[pick])
            node = node.entries[pick].child
        self.stats.build_node_accesses += 1
        return node

    def _split(self, node: Node) -> None:
        entries = node.entries
        pivot1, pivot2 = self.policy.promote(node, entries, self.metric)
        group1, group2 = self.policy.partition(entries, pivot1, pivot2, self.metric)

        new_node = Node(node.is_leaf)
        node.replace_entries(group1)
        new_node.replace_entries(group2)
        radius1 = self._refresh_node(node, pivot1)
        radius2 = self._refresh_node(new_node, pivot2)

        if node.is_leaf:
            # Maintain the left-to-right leaf chain (Section 5 item (i)).
            new_node.next_leaf = node.next_leaf
            new_node.prev_leaf = node
            if node.next_leaf is not None:
                node.next_leaf.prev_leaf = new_node
            node.next_leaf = new_node
            for entry in new_node.entries:
                self.leaf_of[entry.object_id] = new_node

        entry1 = RoutingEntry(pivot1, radius1, node)
        entry2 = RoutingEntry(pivot2, radius2, new_node)

        if node.parent_node is None:
            new_root = Node(is_leaf=False)
            new_root.add_entry(entry1)
            new_root.add_entry(entry2)
            self.root = new_root
            return

        parent = node.parent_node
        parent.entries.remove(node.parent_entry)
        parent.add_entry(entry1)
        parent.add_entry(entry2)
        grandparent_pivot = parent.pivot_point
        if grandparent_pivot is not None:
            entry1.parent_distance = self.metric.distance(pivot1, grandparent_pivot)
            entry2.parent_distance = self.metric.distance(pivot2, grandparent_pivot)
        parent.invalidate()
        if len(parent.entries) > self.capacity:
            self._split(parent)

    def _refresh_node(self, node: Node, pivot: np.ndarray) -> float:
        """Recompute parent distances for a (re)pivoted node; return its
        covering radius."""
        distances = self.metric.to_point(node.entry_points(), pivot)
        radius = 0.0
        for entry, d in zip(node.entries, distances):
            entry.parent_distance = float(d)
            reach = float(d) if node.is_leaf else float(d) + entry.covering_radius
            radius = max(radius, reach)
        return radius

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query_point(
        self, point: np.ndarray, radius: float, *, prune_grey: bool = False
    ) -> List[int]:
        """Top-down range query ``Q(point, radius)``.

        With ``prune_grey`` the traversal skips grey subtrees (Section
        5.1); results then omit objects inside fully-grey subtrees, which
        is sound for all coloring updates because those objects are grey
        already.
        """
        out: List[int] = []
        self._search(self.root, np.asarray(point), float(radius), prune_grey, out)
        return out

    def _search(
        self,
        node: Node,
        point: np.ndarray,
        radius: float,
        prune_grey: bool,
        out: List[int],
    ) -> None:
        if prune_grey and node.grey:
            return
        self.stats.node_accesses += 1
        if not node.entries:
            return  # empty root of a freshly created tree
        distances = self.metric.to_point(node.entry_points(), point)
        self.stats.distance_computations += len(node.entries)
        if node.is_leaf:
            for entry, d in zip(node.entries, distances):
                if d <= radius:
                    out.append(entry.object_id)
            return
        radii = node.covering_radii()
        for entry, d, r_cov in zip(node.entries, distances, radii):
            if d <= radius + r_cov:
                self._search(entry.child, point, radius, prune_grey, out)

    def range_query_batch_points(
        self, points: np.ndarray, radius: float
    ) -> List[List[int]]:
        """Top-down range queries for many points in one shared descent.

        Every node on the union of the queries' search paths is visited
        exactly once; the triangle-inequality test runs as one pairwise
        block over the queries still active at that node.  Cost
        accounting is *identical* to issuing the queries one at a time:
        a node charges one access per active query (a query is active
        at a node precisely when the per-query traversal would have
        visited it) and one distance computation per (active query,
        entry) pair.  Result lists match the per-query traversal order
        element for element, because the descent visits entries in the
        same order and the metric's ``pairwise`` agrees with
        ``to_point`` bit for bit.
        """
        points = np.asarray(points, dtype=float)
        results: List[List[int]] = [[] for _ in range(points.shape[0])]
        if points.shape[0]:
            active = np.arange(points.shape[0], dtype=np.int64)
            self._search_batch(self.root, points, active, float(radius), results)
        return results

    def _search_batch(
        self,
        node: Node,
        points: np.ndarray,
        active: np.ndarray,
        radius: float,
        results: List[List[int]],
    ) -> None:
        self.stats.node_accesses += active.size
        if not node.entries:
            return  # empty root of a freshly created tree
        block = self.metric.pairwise(points[active], node.entry_points())
        self.stats.distance_computations += block.size
        if node.is_leaf:
            for j, entry in enumerate(node.entries):
                for q in active[block[:, j] <= radius]:
                    results[q].append(entry.object_id)
            return
        radii = node.covering_radii()
        for j, entry in enumerate(node.entries):
            sub = active[block[:, j] <= radius + radii[j]]
            if sub.size:
                self._search_batch(entry.child, points, sub, radius, results)

    def range_query_bottom_up(
        self,
        object_id: int,
        radius: float,
        *,
        prune_grey: bool = False,
        stop_at_grey: bool = False,
    ) -> List[int]:
        """Range query starting from the leaf storing ``object_id``.

        Climbs toward the root, searching sibling subtrees at each level.
        ``stop_at_grey`` implements Fast-C's shortcut: stop climbing at
        the first grey internal node, accepting that distant neighbors
        may be missed (Section 5.1).
        """
        if object_id not in self.leaf_of:
            raise KeyError(f"object id {object_id} is not indexed")
        point = self._point_of(object_id)
        leaf = self.leaf_of[object_id]
        out: List[int] = []
        self._search(leaf, point, radius, prune_grey, out)
        node = leaf
        while node.parent_node is not None:
            parent = node.parent_node
            if stop_at_grey and parent.grey:
                break
            self.stats.node_accesses += 1
            distances = self.metric.to_point(parent.entry_points(), point)
            self.stats.distance_computations += len(parent.entries)
            radii = parent.covering_radii()
            for entry, d, r_cov in zip(parent.entries, distances, radii):
                if entry.child is node:
                    continue
                if d <= radius + r_cov:
                    self._search(entry.child, point, radius, prune_grey, out)
            node = parent
        return out

    def _point_of(self, object_id: int) -> np.ndarray:
        leaf = self.leaf_of[object_id]
        for entry in leaf.entries:
            if entry.object_id == object_id:
                return entry.point
        raise KeyError(f"object id {object_id} missing from its leaf")  # pragma: no cover

    def knn_query(self, point: np.ndarray, k: int) -> List[int]:
        """The ``k`` nearest indexed objects to ``point`` (best-first).

        Classic M-tree kNN: a frontier ordered by each subtree's
        optimistic distance ``max(0, d(q, pivot) - r_cov)``; subtrees
        whose bound exceeds the current k-th best distance are pruned.
        Node accesses are charged like range queries.  Ties break on the
        smaller object id for determinism.
        """
        import heapq

        if not 1 <= k <= self.size:
            raise ValueError(f"k must be in [1, {self.size}], got {k}")
        point = np.asarray(point)
        frontier: List[tuple] = [(0.0, 0, self.root)]
        counter = 1
        # Max-heap of the best k (negated distance, negated id) so the
        # worst current candidate is peekable at index 0.
        best: List[tuple] = []

        def kth_distance() -> float:
            return -best[0][0] if len(best) == k else np.inf

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > kth_distance():
                break  # every remaining subtree is at least this far
            self.stats.node_accesses += 1
            if not node.entries:
                continue
            distances = self.metric.to_point(node.entry_points(), point)
            self.stats.distance_computations += len(node.entries)
            if node.is_leaf:
                for entry, d in zip(node.entries, distances):
                    candidate = (-float(d), -entry.object_id)
                    if len(best) < k:
                        heapq.heappush(best, candidate)
                    elif candidate > best[0]:
                        heapq.heapreplace(best, candidate)
                continue
            radii = node.covering_radii()
            for entry, d, r_cov in zip(node.entries, distances, radii):
                child_bound = max(0.0, float(d) - float(r_cov))
                if child_bound <= kth_distance():
                    heapq.heappush(frontier, (child_bound, counter, entry.child))
                    counter += 1
        ordered = sorted(best, key=lambda item: (-item[0], -item[1]))
        return [-object_id for _, object_id in ordered]

    def point_query_accesses(self, point: np.ndarray) -> int:
        """Node accesses needed to answer an exact point query.

        Every subtree whose covering ball contains the point must be
        visited (balls overlap), which is precisely what the fat-factor
        of Traina et al. measures.
        """
        accesses = 0
        stack = [self.root]
        point = np.asarray(point)
        while stack:
            node = stack.pop()
            accesses += 1
            if not node.entries:
                continue
            distances = self.metric.to_point(node.entry_points(), point)
            if node.is_leaf:
                continue
            radii = node.covering_radii()
            for entry, d, r_cov in zip(node.entries, distances, radii):
                if d <= r_cov:
                    stack.append(entry.child)
        return accesses

    # ------------------------------------------------------------------
    # Traversal / introspection
    # ------------------------------------------------------------------
    def leaves(self) -> Iterator[Node]:
        """Leaves in chain order (left to right)."""
        leaf: Optional[Node] = self.first_leaf
        while leaf is not None:
            yield leaf
            leaf = leaf.next_leaf

    def objects_in_leaf_order(self) -> Iterator[int]:
        """Object ids in a single left-to-right leaf scan (Section 5)."""
        for leaf in self.leaves():
            for entry in leaf.entries:
                yield entry.object_id

    def nodes(self) -> Iterator[Node]:
        """All nodes, preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def height(self) -> int:
        """Levels from root to leaf inclusive (1 for a lone root leaf)."""
        node = self.root
        levels = 1
        while not node.is_leaf:
            node = node.entries[0].child
            levels += 1
        return levels

    def freeze(self) -> None:
        """Disallow further inserts (called when a coloring attaches)."""
        self._frozen = True

    def unfreeze(self) -> None:
        self._frozen = False

    # ------------------------------------------------------------------
    # Grey-flag maintenance (Section 5.1 pruning rule)
    # ------------------------------------------------------------------
    def mark_grey_upward(self, leaf: Node) -> None:
        """Leaf lost its last white object: grey it and propagate."""
        if leaf.grey:
            return
        leaf.grey = True
        node = leaf.parent_node
        while node is not None and not node.grey:
            if all(entry.child.grey for entry in node.entries):
                node.grey = True
                node = node.parent_node
            else:
                break

    def clear_grey_upward(self, leaf: Node) -> None:
        """Leaf regained a white object (zoom-in): clear grey flags."""
        node: Optional[Node] = leaf
        while node is not None and node.grey:
            node.grey = False
            node = node.parent_node

    def reset_grey(self) -> None:
        for node in self.nodes():
            node.grey = False

    # ------------------------------------------------------------------
    # Structural validation (used heavily by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural violation.

        The load-bearing M-tree invariant is that every routing entry's
        covering radius bounds the distance from its pivot to every
        *object* stored in its subtree — that is all the range-query
        pruning relies on.  (Child balls need not nest inside parent
        balls; radii are upper bounds that can overshoot after splits.)
        """
        seen: List[int] = []
        self._check_node(self.root)
        for leaf in self.leaves():
            assert leaf.is_leaf, "leaf chain contains an internal node"
            seen.extend(entry.object_id for entry in leaf.entries)
        assert len(seen) == self.size, (
            f"leaf chain holds {len(seen)} objects, tree size is {self.size}"
        )
        assert len(set(seen)) == len(seen), "duplicate object ids in leaves"
        for object_id, leaf in self.leaf_of.items():
            assert any(e.object_id == object_id for e in leaf.entries), (
                f"leaf_of map stale for object {object_id}"
            )

    def _subtree_points(self, node: Node) -> List[np.ndarray]:
        if node.is_leaf:
            return [entry.point for entry in node.entries]
        points: List[np.ndarray] = []
        for entry in node.entries:
            points.extend(self._subtree_points(entry.child))
        return points

    def _check_node(self, node: Node) -> None:
        assert node.entries or node is self.root, "non-root node is empty"
        if node is not self.root:
            assert len(node.entries) <= self.capacity, "node over capacity"
        if node.is_leaf:
            pivot = node.pivot_point
            if pivot is not None:
                r_cov = node.parent_entry.covering_radius
                for entry in node.entries:
                    d = self.metric.distance(pivot, entry.point)
                    assert d <= r_cov + 1e-9, (
                        f"object {entry.object_id} outside covering ball "
                        f"({d} > {r_cov})"
                    )
                    assert abs(entry.parent_distance - d) <= 1e-9, (
                        f"stale parent distance for object {entry.object_id}"
                    )
            return
        for entry in node.entries:
            assert entry.child.parent_node is node, "broken parent pointer"
            assert entry.child.parent_entry is entry, "broken parent entry"
            for point in self._subtree_points(entry.child):
                d = self.metric.distance(entry.pivot, point)
                assert d <= entry.covering_radius + 1e-9, (
                    f"object at distance {d} escapes covering radius "
                    f"{entry.covering_radius}"
                )
            self._check_node(entry.child)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"MTree(size={self.size}, capacity={self.capacity}, "
            f"policy={self.policy.name}, height={self.height()})"
        )

"""Serving-side glue for live datasets.

:class:`LiveCacheView` is the one seam between the live subsystem and
the shared adjacency cache: it *is* a
:class:`~repro.service.cache.SharedCacheView` (same keying, same
single-flight and shm semantics — the dataset_id it scopes is already
version-stamped), but a miss is answered from the live dataset's
incremental adjacency instead of letting the engine run a full grid
build.  The first request at a radius pays the incremental structure's
initial build once; every post-mutation request pays only the
alive-mask compaction of the maintained structure.
"""

from __future__ import annotations

from repro.obs import trace as obs_trace
from repro.service.cache import SharedCacheManager, SharedCacheView

__all__ = ["LiveCacheView"]


class LiveCacheView(SharedCacheView):
    """A :class:`SharedCacheView` whose misses build incrementally.

    Attached by :meth:`repro.service.state.ServiceState.ensure_index`
    to indexes over live-dataset snapshots.  ``get`` keeps the
    manager's full miss protocol (single-flight claim, breaker, shm
    attach) and, when this thread ends up owning the build slot,
    resolves it with
    :meth:`~repro.live.dataset.MutableDataset.adjacency_snapshot`
    instead of returning None — so the engine's own builder never runs
    for a live dataset, and waiters/other workers receive the published
    snapshot exactly as they would a built one.
    """

    def __init__(
        self, manager: SharedCacheManager, dataset_id: str, metric, live
    ) -> None:
        super().__init__(manager, dataset_id, metric)
        self.live = live

    def get(self, key: float):
        value = super().get(key)
        if value is not None:
            return value
        # This thread owns the build slot for the composite key.
        composite = self._key(key)
        try:
            csr, _ = self.live.adjacency_snapshot(key)
        except BaseException as exc:
            self.manager.fail(composite, exc)
            raise
        # put() records the adjacency-build span from the claim
        # timestamp; this annotation marks it as the incremental path
        # (alive-mask compaction, not a ground-up engine build).
        obs_trace.annotate(live_incremental=True)
        self.manager.put(composite, csr)
        return csr

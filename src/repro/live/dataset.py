"""Versioned mutable overlay on served datasets.

A :class:`MutableDataset` wraps one immutable
:class:`~repro.datasets.Dataset` and accepts insert/delete batches
while the serving layer keeps handing out *immutable per-version
snapshots*:

* **ids are arrival positions, forever** — the base points own ids
  ``0..n0-1``, every inserted point appends the next id, and deletion
  flips an alive bit (a tombstone) without renumbering anything.
  Stable global ids are what let a client hold a selection across
  mutations and ask for it to be *repaired* rather than recomputed.
* **versions** — every applied batch bumps ``version``; the handle the
  registry serves is stamped ``name@v<version>``, so every downstream
  identity (adjacency cache keys, shm segment names, single-flight
  keys) is version-scoped and stale state is unreachable by
  construction.
* **append buffers + compaction** — inserts accumulate in pending
  buffers; once enough batches pile up they are compacted into the
  base coordinate array (one concatenate), keeping snapshot cost flat.
  Tombstoned rows are *not* physically removed (that would renumber
  ids); they are filtered out of snapshots by the alive mask.
* **incremental adjacency** — one
  :class:`~repro.graph.incremental.IncrementalNeighborhood` per radius
  bucket that serving has materialised, fed every insert batch so a
  post-mutation adjacency is a cheap alive-mask compaction, not a
  rebuild.

Thread safety: all mutation and snapshot entry points serialise on one
re-entrant lock; served snapshots are frozen arrays, safe to read
concurrently with later mutations.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets import Dataset
from repro.graph.incremental import IncrementalNeighborhood

__all__ = ["MutableDataset", "MutationError"]

#: Pending insert batches tolerated before they are folded into the
#: base array.  Compaction is one concatenate, so the threshold only
#: bounds how fragmented the coordinate storage may get.
COMPACT_EVERY = 8


class MutationError(ValueError):
    """A mutation batch referenced ids that cannot be mutated."""


class MutableDataset:
    """One live dataset: base points + append buffers + tombstones.

    ``dataset`` provides the initial points and the metric; its array
    is copied (the registry freezes originals).
    """

    #: Lock discipline (see :mod:`repro.engines.cache`): every mutable
    #: attribute moves under the dataset lock; snapshots hand out
    #: frozen arrays only.
    _GUARDED_BY = {
        "version": "self._lock",
        "mutations": "self._lock",
        "compactions": "self._lock",
        "_base": "self._lock",
        "_pending": "self._lock",
        "_alive": "self._lock",
        "_points_cache": "self._lock",
        "_adjacency": "self._lock",
        "_snapshots": "self._lock",
        "_handle": "self._lock",
        "_log": "self._lock",
    }

    def __init__(
        self, name: str, dataset: Dataset, *, compact_every: int = COMPACT_EVERY
    ) -> None:
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.name = str(name)
        self.metric = dataset.metric
        self.compact_every = int(compact_every)
        self._lock = threading.RLock()
        self._base = np.array(dataset.points, dtype=float)
        self._pending: List[np.ndarray] = []
        self._alive = np.ones(self._base.shape[0], dtype=bool)
        self._points_cache: Optional[np.ndarray] = None
        self._adjacency: Dict[float, IncrementalNeighborhood] = {}
        #: (version, csr, alive_ids) per radius bucket — one snapshot
        #: serves both cache migration and selection repair.
        self._snapshots: Dict[float, tuple] = {}
        self._handle = None
        self._log: List[dict] = []
        self.version = 0
        self.mutations = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Identity / geometry
    # ------------------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        """The dataset's re-entrant lock, for callers that need several
        operations (mutation + cache migration + repair) to observe one
        consistent version.  All public methods re-acquire it safely."""
        return self._lock

    @property
    def dataset_id(self) -> str:
        """The version-stamped identity everything downstream keys on."""
        with self._lock:
            return f"{self.name}@v{self.version}"

    @property
    def dim(self) -> int:
        return int(self._base.shape[1])

    @property
    def n_total(self) -> int:
        """All ids ever assigned (alive + tombstoned)."""
        with self._lock:
            return int(self._alive.shape[0])

    @property
    def n_alive(self) -> int:
        with self._lock:
            return int(np.count_nonzero(self._alive))

    def points_all(self) -> np.ndarray:
        """The full coordinate array (every id, dead rows included)."""
        with self._lock:
            if self._points_cache is None:
                if self._pending:
                    self._points_cache = np.concatenate(
                        [self._base] + self._pending
                    )
                else:
                    self._points_cache = self._base
            return self._points_cache

    def alive_mask(self) -> np.ndarray:
        with self._lock:
            return self._alive.copy()

    def alive_ids(self) -> np.ndarray:
        """Global ids of the alive points, ascending — the local→global
        map of the current version's compacted snapshot."""
        with self._lock:
            return np.flatnonzero(self._alive)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, inserts=None, deletes=None) -> dict:
        """One insert/delete batch; bumps the version, returns the delta.

        ``inserts`` is an array-like of new points (``(b, dim)`` or a
        single ``dim``-vector); ``deletes`` is an iterable of global
        ids.  Deleting an unknown or already-deleted id raises
        :class:`MutationError` (→ 400 at the service boundary) before
        anything is applied; an empty batch is also rejected so version
        bumps always mean a real change.
        """
        with self._lock:
            new_points = self._coerce_inserts(inserts)
            delete_ids = self._coerce_deletes(deletes)
            if new_points.shape[0] == 0 and delete_ids.size == 0:
                raise MutationError(
                    "mutation batch is empty: provide 'inserts' and/or 'deletes'"
                )
            start = self._alive.shape[0]
            inserted = np.arange(
                start, start + new_points.shape[0], dtype=np.int64
            )
            if new_points.shape[0]:
                self._pending.append(new_points)
                self._alive = np.concatenate(
                    [self._alive, np.ones(new_points.shape[0], dtype=bool)]
                )
                self._points_cache = None
                points = self.points_all()
                for adjacency in self._adjacency.values():
                    adjacency.append(points, int(new_points.shape[0]))
                if len(self._pending) >= self.compact_every:
                    self._base = self.points_all()
                    self._pending = []
                    self.compactions += 1
            if delete_ids.size:
                self._alive[delete_ids] = False
            self.version += 1
            self.mutations += 1
            self._handle = None
            self._snapshots.clear()
            delta = {
                "version": self.version,
                "inserted": [int(i) for i in inserted],
                "deleted": [int(i) for i in delete_ids],
                "n_alive": self.n_alive,
                "n_total": int(self._alive.shape[0]),
            }
            self._log.append(delta)
            return delta

    def _coerce_inserts(self, inserts) -> np.ndarray:
        if inserts is None:
            return np.empty((0, self.dim), dtype=float)
        points = np.asarray(inserts, dtype=float)
        if points.ndim == 1 and points.size == self.dim:
            points = points.reshape(1, self.dim)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise MutationError(
                f"inserts must be (b, {self.dim}) points, got shape "
                f"{points.shape}"
            )
        if not np.all(np.isfinite(points)):
            raise MutationError("inserts contain non-finite coordinates")
        return points

    def _coerce_deletes(self, deletes) -> np.ndarray:
        if deletes is None:
            return np.empty(0, dtype=np.int64)
        try:
            ids = np.asarray(list(deletes), dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise MutationError(f"deletes must be integer ids: {exc}") from None
        if ids.size == 0:
            return ids
        if np.unique(ids).size != ids.size:
            raise MutationError("deletes contain duplicate ids")
        oob = ids[(ids < 0) | (ids >= self._alive.shape[0])]
        if oob.size:
            raise MutationError(
                f"deletes reference unknown ids {sorted(int(i) for i in oob)}"
            )
        dead = ids[~self._alive[ids]]
        if dead.size:
            raise MutationError(
                "deletes reference already-deleted ids "
                f"{sorted(int(i) for i in dead)}"
            )
        return ids

    def mutation_log(self) -> List[dict]:
        """Applied deltas in order (what a replay must reproduce)."""
        with self._lock:
            return [dict(d) for d in self._log]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot_handle(self):
        """The registry handle of the current version: compacted alive
        points, frozen, identity-stable until the next mutation."""
        from repro.service.registry import DatasetHandle

        with self._lock:
            if self._handle is not None:
                return self._handle
            points = self.points_all()[self._alive].copy()
            points.setflags(write=False)
            dataset = Dataset(
                name=self.dataset_id, points=points, metric=self.metric
            )
            alive_ids = np.flatnonzero(self._alive)
            alive_ids.setflags(write=False)
            self._handle = DatasetHandle(
                dataset_id=self.dataset_id,
                dataset=dataset,
                spec={
                    "live": True,
                    "name": self.name,
                    "version": self.version,
                    "n_total": int(self._alive.shape[0]),
                    # Local -> global id map of this snapshot; responses
                    # computed against the handle stay version-consistent
                    # even if the dataset mutates mid-request.
                    "alive_ids": alive_ids,
                },
            )
            return self._handle

    def ensure_adjacency(self, radius: float) -> IncrementalNeighborhood:
        """The tracked incremental adjacency for ``radius``'s bucket.

        Built at the *request's* radius on first use (the bucket only
        keys the slot), mirroring SharedCacheManager: radii within one
        bucket share whichever build came first.  Once tracked, every
        later insert batch is fed into it by :meth:`apply`.
        """
        from repro.service.cache import radius_bucket

        bucket = radius_bucket(radius)
        with self._lock:
            adjacency = self._adjacency.get(bucket)
            if adjacency is None:
                adjacency = IncrementalNeighborhood(
                    self.points_all(), self.metric, float(radius)
                )
                self._adjacency[bucket] = adjacency
            return adjacency

    def adjacency_nbytes(self, radius: float) -> int:
        """Footprint estimate of the tracked adjacency for ``radius``
        (0 when the bucket is untracked) — what a lazily migrated cache
        entry reports until its compacted CSR materialises."""
        from repro.service.cache import radius_bucket

        with self._lock:
            adjacency = self._adjacency.get(radius_bucket(radius))
            return 0 if adjacency is None else int(adjacency.nbytes)

    def adjacency_snapshot(self, radius: float) -> Tuple[object, np.ndarray]:
        """``(csr, alive_ids)`` for the current version at ``radius``.

        The CSR is in local (compacted) id space and byte-identical to
        a fresh build over the alive points; ``alive_ids`` maps local →
        global.  The per-bucket incremental structure is created on
        first use and fed every later insert batch; repeated calls at
        one version reuse one snapshot.
        """
        from repro.service.cache import radius_bucket

        bucket = radius_bucket(radius)
        with self._lock:
            cached = self._snapshots.get(bucket)
            if cached is not None and cached[0] == self.version:
                return cached[1], cached[2]
            adjacency = self.ensure_adjacency(radius)
            csr = adjacency.snapshot_csr(self._alive)
            alive_ids = np.flatnonzero(self._alive)
            self._snapshots[bucket] = (self.version, csr, alive_ids)
            return csr, alive_ids

    def adjacency_snapshot_for_mask(self, radius: float, mask: np.ndarray):
        """The compacted CSR for an *explicit* alive mask at ``radius``.

        The deferred half of lazy cache migration: a migrated bucket
        captures the post-batch alive mask at mutation time and resolves
        here on first read.  If the dataset has mutated again since, the
        pinned mask still reproduces that version's adjacency exactly —
        edges are geometric facts, appends only ever add edges incident
        to ids the pinned mask marks dead, and the mask filter removes
        them — so a reader holding an older version-stamped handle never
        observes a newer version's graph.
        """
        mask = np.asarray(mask, dtype=bool)
        with self._lock:
            # Alive masks are unique per version (dead ids stay dead,
            # inserts extend the mask), so mask equality means "current
            # version": serve the shared per-version snapshot.
            if mask.shape[0] == self._alive.shape[0] and np.array_equal(
                mask, self._alive
            ):
                return self.adjacency_snapshot(radius)[0]
            adjacency = self.ensure_adjacency(radius)
            padded = np.zeros(adjacency.n, dtype=bool)
            padded[: mask.shape[0]] = mask
            return adjacency.snapshot_csr(padded)

    def tracked_buckets(self) -> List[float]:
        """Radius buckets with a live incremental adjacency."""
        with self._lock:
            return sorted(self._adjacency)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        with self._lock:
            return {
                "id": self.name,
                "loaded": True,
                "live": True,
                "version": self.version,
                "n": self.n_alive,
                "n_total": int(self._alive.shape[0]),
                "dim": self.dim,
                "metric": self.metric.name,
                "mutations": self.mutations,
                "compactions": self.compactions,
                "tracked_radii": self.tracked_buckets(),
                "spec": {"family": "live"},
            }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MutableDataset({self.name!r}, version={self.version}, "
            f"alive={self.n_alive}/{self.n_total})"
        )

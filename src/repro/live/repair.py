"""Greedy selection repair after a mutation batch (the online analogue
of the paper's zooming: adapt, don't recompute).

Given the previous r-DisC diverse selection (global ids) and the
current version's adjacency, :func:`repair_selection` produces a valid
selection for the new version while keeping as much of the previous one
as possible:

1. **Survivors** — previous blacks still alive are kept verbatim.
   Deleting points never adds edges between the remaining ones, so the
   survivors stay pairwise dissimilar (Definition 1, condition 2).
2. **Uncovered frontier** — everything not within ``r`` of a survivor:
   the neighborhoods orphaned by deleted blacks plus any inserted
   points landing outside existing coverage.  By construction this
   frontier is local to the mutation delta.
3. **Greedy re-cover** — Greedy-DisC restricted to the frontier: pick
   the uncovered object covering the most uncovered objects, repeat.
   A pick is uncovered, hence not within ``r`` of any black — so
   independence is preserved as coverage is restored.

The result therefore satisfies *both* Definition 1 conditions exactly
(the test suite re-verifies with :func:`repro.core.verify.verify_disc`)
— the trade-off against a full recompute is not validity but which
valid maximal independent set you get: repair maximises overlap with
what the user is already looking at (the Jaccard-stability metric the
service bench reports), full recompute maximises nothing of the sort.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cancellation import CHECKPOINT_EVERY, current_token

__all__ = ["jaccard", "repair_selection", "repair_selection_delta"]


def jaccard(a: Sequence[int], b: Sequence[int]) -> float:
    """Jaccard similarity of two id sets (1.0 when both are empty —
    nothing to disagree about)."""
    sa, sb = set(int(x) for x in a), set(int(x) for x in b)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def repair_selection(
    csr,
    alive_ids: np.ndarray,
    previous: Sequence[int],
) -> dict:
    """Repair ``previous`` (global ids) against the compacted adjacency.

    ``csr`` is the current version's alive-only adjacency in local id
    space; ``alive_ids`` maps local → global (ascending).  Returns a
    dict with the repaired selection in both id spaces plus the repair
    accounting; ``selected`` (global) is the wire payload, ``local``
    feeds verification and zooming.
    """
    alive_ids = np.asarray(alive_ids, dtype=np.int64)
    n = csr.n
    if alive_ids.shape[0] != n:
        raise ValueError(
            f"alive_ids has {alive_ids.shape[0]} entries for n={n}"
        )
    previous_arr = np.asarray(sorted(set(int(p) for p in previous)), dtype=np.int64)

    # Global -> local for the previous blacks that are still alive.
    pos = np.searchsorted(alive_ids, previous_arr)
    pos_clipped = np.minimum(pos, max(0, n - 1))
    if n and previous_arr.size:
        hit = (pos < n) & (alive_ids[pos_clipped] == previous_arr)
    else:
        hit = np.zeros(previous_arr.shape[0], dtype=bool)
    survivors_local = pos_clipped[hit].astype(np.int64)
    removed_global = previous_arr[~hit]

    covered = csr.cover_mask(survivors_local)
    uncovered = ~covered
    added_local: list = []
    token = current_token()
    if np.any(uncovered):
        counts = csr.neighbor_counts(uncovered).astype(np.int64)
        iterations = 0
        while True:
            iterations += 1
            if token is not None and iterations % CHECKPOINT_EVERY == 0:
                token.checkpoint()
            frontier = np.flatnonzero(uncovered)
            if frontier.size == 0:
                break
            pick = int(frontier[np.argmax(counts[frontier])])
            added_local.append(pick)
            neighbors = csr.neighbors(pick).astype(np.int64)
            newly = neighbors[uncovered[neighbors]]
            uncovered[newly] = False
            uncovered[pick] = False
            sources = np.append(newly, np.int64(pick))
            csr.decrement(counts, sources, uncovered)

    added_arr = np.asarray(sorted(added_local), dtype=np.int64)
    selected_local = np.concatenate([survivors_local, added_arr]).astype(np.int64)
    selected_local.sort()
    selected_global = alive_ids[selected_local]
    return {
        "selected": [int(g) for g in selected_global],
        "local": [int(l) for l in selected_local],
        "kept": [int(g) for g in alive_ids[survivors_local]],
        "added": [int(g) for g in alive_ids[added_arr]],
        "removed": [int(g) for g in removed_global],
        "jaccard_previous": jaccard(selected_global, previous),
    }


def repair_selection_delta(
    adjacency,
    alive: np.ndarray,
    previous: Sequence[int],
    *,
    deleted: Sequence[int] = (),
    inserted: Sequence[int] = (),
) -> dict:
    """O(delta) repair against the *incremental* adjacency (global ids).

    The :func:`repair_selection` greedy only ever reads two things: the
    uncovered set, and each uncovered object's count of uncovered
    neighbors.  When ``previous`` was the valid selection for the
    version immediately before this batch, the uncovered set is exactly
    (a) the alive neighborhoods orphaned by deleted blacks plus (b) the
    batch's inserts that landed outside surviving coverage — both local
    to the delta.  This function walks only that frontier against
    :meth:`~repro.graph.incremental.IncrementalNeighborhood.row` and
    produces the *same selection, pick for pick*, as
    :func:`repair_selection` over the compacted snapshot — without ever
    compacting, which is what keeps ``/mutate`` latency proportional to
    the batch instead of the dataset.

    Precondition: ``previous`` is the selection served for the
    pre-batch version and ``(inserted, deleted)`` is exactly that
    batch.  A ``previous`` that skipped versions may leave earlier
    orphans uncovered — clients that cannot guarantee freshness should
    pass ``verify`` to ``/mutate`` or recompute via ``/select``.
    """
    alive = np.asarray(alive, dtype=bool)
    n_total = int(alive.shape[0])
    previous_arr = np.asarray(
        sorted(set(int(p) for p in previous)), dtype=np.int64
    )
    in_range = (previous_arr >= 0) & (previous_arr < n_total)
    survives = np.zeros(previous_arr.shape[0], dtype=bool)
    survives[in_range] = alive[previous_arr[in_range]]
    survivors = previous_arr[survives]
    removed_global = previous_arr[~survives]

    black = np.zeros(n_total, dtype=bool)
    black[survivors] = True
    previous_set = set(int(p) for p in previous_arr.tolist())

    # Candidate frontier: every alive point that *might* have lost its
    # coverage — the neighborhoods of deleted blacks — plus the batch's
    # alive inserts (brand new, coverage unknown).
    token = current_token()
    candidates: set = set()
    for i, dead in enumerate(deleted):
        if token is not None and i % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        dead = int(dead)
        if dead not in previous_set:
            continue  # a deleted white/grey never carried coverage
        row = adjacency.row(dead)
        if row.size:
            candidates.update(int(c) for c in row[alive[row]].tolist())
    for new_id in inserted:
        new_id = int(new_id)
        if 0 <= new_id < n_total and alive[new_id]:
            candidates.add(new_id)

    # Coverage check per candidate: a black neighbor (or being black)
    # means the survivor set still covers it.
    uncovered_ids: list = []
    rows_of: dict = {}
    for i, cand in enumerate(sorted(candidates)):
        if token is not None and i % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        if black[cand]:
            continue
        row = adjacency.row(cand)
        alive_row = row[alive[row]] if row.size else row
        if alive_row.size and bool(np.any(black[alive_row])):
            continue
        uncovered_ids.append(cand)
        rows_of[cand] = alive_row

    # Greedy-DisC restricted to the frontier subgraph.  Ordering u_arr
    # ascending (global ids) matches repair_selection's frontier order
    # (local ids, a monotone remap), so argmax tie-breaks identically
    # and the two paths emit the same picks.
    u_arr = np.asarray(uncovered_ids, dtype=np.int64)
    index_of = {int(g): i for i, g in enumerate(u_arr.tolist())}
    in_frontier = np.zeros(n_total, dtype=bool)
    if u_arr.size:
        in_frontier[u_arr] = True
    sub_rows: list = []
    counts = np.zeros(u_arr.shape[0], dtype=np.int64)
    for i, gid in enumerate(u_arr.tolist()):
        if token is not None and i % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        row = rows_of[gid]
        sub = row[in_frontier[row]] if row.size else row
        sub_rows.append(
            np.asarray(
                [index_of[int(x)] for x in sub.tolist()], dtype=np.int64
            )
        )
        counts[i] = sub.size

    uncovered = np.ones(u_arr.shape[0], dtype=bool)
    added_global: list = []
    iterations = 0
    while True:
        iterations += 1
        if token is not None and iterations % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        frontier = np.flatnonzero(uncovered)
        if frontier.size == 0:
            break
        pick = int(frontier[np.argmax(counts[frontier])])
        added_global.append(int(u_arr[pick]))
        neighbors = sub_rows[pick]
        newly = neighbors[uncovered[neighbors]]
        uncovered[newly] = False
        uncovered[pick] = False
        for source in np.append(newly, np.int64(pick)):
            counts[sub_rows[int(source)]] -= 1

    added_arr = np.asarray(sorted(added_global), dtype=np.int64)
    selected_global = np.concatenate([survivors, added_arr])
    selected_global.sort()
    alive_ids = np.flatnonzero(alive)
    selected_local = np.searchsorted(alive_ids, selected_global)
    return {
        "selected": [int(g) for g in selected_global],
        "local": [int(l) for l in selected_local],
        "kept": [int(g) for g in survivors],
        "added": [int(g) for g in added_arr],
        "removed": [int(g) for g in removed_global],
        "jaccard_previous": jaccard(selected_global, previous),
    }

"""Live (mutable) served datasets — the online DisC scenario.

The paper's zoom machinery adapts a solution when the *radius* moves;
this package adapts it when the *data* moves: versioned mutable
datasets (:class:`MutableDataset`), incrementally maintained adjacency
(:class:`~repro.graph.incremental.IncrementalNeighborhood`), and
paper-style greedy selection repair (:func:`repair_selection`) that
patches a previous black set after an insert/delete batch instead of
recomputing it.
"""

from repro.live.dataset import MutableDataset, MutationError
from repro.live.repair import jaccard, repair_selection
from repro.live.serving import LiveCacheView

__all__ = [
    "LiveCacheView",
    "MutableDataset",
    "MutationError",
    "jaccard",
    "repair_selection",
]

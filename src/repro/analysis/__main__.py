"""``python -m repro.analysis [paths]`` — run the linter."""

import sys

from repro.analysis import main

if __name__ == "__main__":
    sys.exit(main())

"""Runtime lock-order auditor: record lock acquisitions, fail on cycles.

Static rules (:mod:`repro.analysis.rules`) check that guarded state is
mutated under its lock; they cannot see the *order* in which two locks
nest, which is what actually deadlocks.  This module instruments
:func:`threading.Lock` and :func:`threading.RLock` so that running the
test suite doubles as a lock-order experiment:

- :func:`install` replaces the two factories with proxy-producing
  versions.  Each proxy is named by the source line that created its
  lock (all locks born at one line are one *site* — the discipline we
  audit is per-site ordering, not per-instance).
- While installed, every thread keeps a stack of currently-held sites;
  acquiring site ``B`` while holding site ``A`` records the directed
  edge ``A -> B``.
- :func:`report` returns the accumulated graph plus any cycles found by
  DFS.  A cycle across *distinct* sites means two call paths nest the
  same locks in opposite orders — the classic ABBA deadlock, caught
  even though the schedules that would actually deadlock never ran.

Same-site edges (``A -> A``) are deliberately not recorded: acquiring
two instances born at one line (e.g. ``with self._lock, other._lock``
in ``AdjacencyCache.adopt``) is invisible to a site-granularity audit
and would otherwise report every such pattern as a one-node cycle.
They are instead surfaced separately in the report under
``same_site_pairs`` so a human can check those few spots by eye.

Activation: ``REPRO_LOCK_AUDIT=1 python -m pytest ...`` — conftest.py
installs the shim before any :mod:`repro` module is imported and fails
the session if the final graph has a cycle.  Everything here is
stdlib-only and never enabled by default, so the production import path
is untouched.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderError",
    "assert_acyclic",
    "cycles",
    "install",
    "installed",
    "report",
    "reset",
    "uninstall",
]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Guards the global graph state below.  Always a *real* lock (created
#: before install swaps the factories), so recording never recurses.
_STATE_LOCK = _REAL_LOCK()
_EDGES: Dict[Tuple[str, str], int] = {}
_SAME_SITE: Set[str] = set()
_SITES: Dict[str, int] = {}
_INSTALLED = False

_HELD = threading.local()


class LockOrderError(AssertionError):
    """The recorded acquisition graph contains an ordering cycle."""


def _creation_site() -> str:
    """``path:line`` of the first frame outside threading/this module."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(("threading.py", "lockaudit.py")):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _held_stack() -> List[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = _HELD.stack = []
    return stack


def _record_acquire(site: str) -> None:
    stack = _held_stack()
    if stack:
        holding = stack[-1]
        if holding == site:
            with _STATE_LOCK:
                _SAME_SITE.add(site)
        else:
            with _STATE_LOCK:
                _EDGES[(holding, site)] = _EDGES.get((holding, site), 0) + 1
    stack.append(site)


def _record_release(site: str) -> None:
    stack = _held_stack()
    # Locks are almost always released LIFO, but ``release`` from a
    # non-owning thread (plain Locks allow it) or hand-over-hand
    # patterns make FIFO legal: drop the innermost matching entry.
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == site:
            del stack[i]
            return


class _AuditedLock:
    """Proxy over a real lock/rlock recording site-order edges.

    Implements the full lock protocol plus the private trio
    (``_release_save`` / ``_acquire_restore`` / ``_is_owned``) that
    :class:`threading.Condition` probes for, so audited RLocks keep
    working as condition carriers (``Condition``, ``Event``, ``Queue``
    all build on them).
    """

    __slots__ = ("_inner", "_site")

    def __init__(self, inner, site: str) -> None:
        self._inner = inner
        self._site = site

    # -- core protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self._inner.acquire(blocking, timeout)
        if got:
            _record_acquire(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        _record_release(self._site)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "_AuditedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- Condition integration ----------------------------------------
    def _release_save(self):
        saved = getattr(self._inner, "_release_save", None)
        if saved is not None:  # RLock: fully unwind recursion
            state = saved()
        else:  # plain Lock: Condition falls back to release/acquire
            self._inner.release()
            state = None
        _record_release(self._site)
        return state

    def _acquire_restore(self, state) -> None:
        restore = getattr(self._inner, "_acquire_restore", None)
        if restore is not None:
            restore(state)
        else:
            self._inner.acquire()
        _record_acquire(self._site)

    def _is_owned(self) -> bool:
        owned = getattr(self._inner, "_is_owned", None)
        if owned is not None:
            return owned()
        # Plain Lock heuristic mirroring threading.Condition's own.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __getattr__(self, name):
        # Anything beyond the audited protocol (``_at_fork_reinit``,
        # future stdlib probes) passes straight through to the real
        # lock — the stdlib treats these as bookkeeping, not ordering.
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<audited {self._inner!r} site={self._site}>"


def _audited_lock_factory():
    site = _creation_site()
    with _STATE_LOCK:
        _SITES[site] = _SITES.get(site, 0) + 1
    return _AuditedLock(_REAL_LOCK(), site)


def _audited_rlock_factory():
    site = _creation_site()
    with _STATE_LOCK:
        _SITES[site] = _SITES.get(site, 0) + 1
    return _AuditedLock(_REAL_RLOCK(), site)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def install() -> None:
    """Swap the ``threading`` factories for auditing proxies.

    Patching the module globals also covers everything the stdlib
    builds from them at call time — ``Condition()``, ``Event()``,
    ``Semaphore()`` and ``queue.Queue`` all create their internal locks
    through ``threading.Lock``/``threading.RLock``.  Locks created
    *before* install stay real and unrecorded, which is why conftest
    installs the shim before importing any :mod:`repro` module.
    """
    global _INSTALLED
    if _INSTALLED:
        return
    threading.Lock = _audited_lock_factory
    threading.RLock = _audited_rlock_factory
    _INSTALLED = True


def uninstall() -> None:
    """Restore the real factories (existing proxies keep working)."""
    global _INSTALLED
    if not _INSTALLED:
        return
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    _INSTALLED = False


def installed() -> bool:
    return _INSTALLED


def reset() -> None:
    """Drop all recorded sites/edges (between tests, not mid-hold)."""
    with _STATE_LOCK:
        _EDGES.clear()
        _SAME_SITE.clear()
        _SITES.clear()


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def cycles(edges: Optional[Dict[Tuple[str, str], int]] = None) -> List[List[str]]:
    """Elementary cycles in the site graph (DFS, first per back edge).

    Returns each cycle as a site list ``[a, b, ..., a]``.  An empty
    list is the pass condition: every pair of locks is always taken in
    one order.
    """
    if edges is None:
        with _STATE_LOCK:
            edges = dict(_EDGES)
    graph: Dict[str, List[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, []).append(dst)
    found: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    done: Set[str] = set()
    for root in sorted(graph):
        if root in done:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        path: List[str] = [root]
        on_path = {root}
        while stack:
            node, idx = stack[-1]
            nexts = graph.get(node, ())
            if idx < len(nexts):
                stack[-1] = (node, idx + 1)
                succ = nexts[idx]
                if succ in on_path:
                    cycle = path[path.index(succ):] + [succ]
                    # Canonicalise rotation so each cycle reports once.
                    body = cycle[:-1]
                    pivot = body.index(min(body))
                    key = tuple(body[pivot:] + body[:pivot])
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        found.append(cycle)
                elif succ not in done:
                    stack.append((succ, 0))
                    path.append(succ)
                    on_path.add(succ)
            else:
                stack.pop()
                path.pop()
                on_path.discard(node)
                done.add(node)
    return found


def report() -> dict:
    """Snapshot of the audit: sites, edges, same-site pairs, cycles."""
    with _STATE_LOCK:
        edges = dict(_EDGES)
        sites = dict(_SITES)
        same = sorted(_SAME_SITE)
    return {
        "installed": _INSTALLED,
        "sites": sites,
        "edges": [
            {"from": src, "to": dst, "count": count}
            for (src, dst), count in sorted(edges.items())
        ],
        "same_site_pairs": same,
        "cycles": cycles(edges),
    }


def assert_acyclic() -> dict:
    """Raise :class:`LockOrderError` if the graph has a cycle.

    Returns the report on success so callers can log edge counts.
    """
    snapshot = report()
    if snapshot["cycles"]:
        lines = ["lock-order cycle(s) detected:"]
        for cycle in snapshot["cycles"]:
            lines.append("  " + " -> ".join(cycle))
        raise LockOrderError("\n".join(lines))
    return snapshot

"""Repo-aware static analysis: ``repro lint`` and the lock-order audit.

Seven PRs of growth piled up invariants that existed only as prose and
parity tests: counters mutated only under their declared lock,
cancellation checkpoints in every hot loop, int32 id discipline for
byte-identical selections, SharedMemory handles held before NumPy
views are built, and no blocking calls on the asyncio front.  This
package enforces them mechanically:

* :mod:`repro.analysis.core` — the AST framework: rule registry,
  per-file visitor pipeline, ``# repro-lint: disable=RULE -- reason``
  suppressions, human + JSON renderers, nonzero exit on findings.
* :mod:`repro.analysis.rules` — the repo-aware rules (one module per
  rule family); importing this package registers them all.
* :mod:`repro.analysis.lockaudit` — a runtime instrumented-lock shim
  that records the lock acquisition graph while the test suite runs
  and fails on cycles (``REPRO_LOCK_AUDIT=1 python -m pytest ...``).

Entry points: ``repro lint [paths] [--rule NAME] [--format json]`` and
``python -m repro.analysis [paths]``.  Exit code 0 means no findings.

Suppression convention
----------------------
A finding is silenced by a trailing comment on the offending line::

    self.hits += 1  # repro-lint: disable=guarded-attribute -- snapshot only, torn reads acceptable

The reason string after ``--`` is mandatory: a suppression without one
is itself reported (``suppression-format``), so every exception to an
invariant carries its justification in the tree.
"""

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Rule,
    all_rules,
    main,
    register,
    render_json,
    render_text,
    run_paths,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers rules)

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "main",
    "register",
    "render_json",
    "render_text",
    "run_paths",
]

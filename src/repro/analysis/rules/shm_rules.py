"""shm-lifecycle: SharedMemory handles must be held, closed or escape.

PR 7 fixed a real segfault from exactly this: a NumPy view built from
a duplicate ``SharedMemory`` handle that was later closed, unmapping
memory live views still pointed at.  The repo's convention since is
that views are built only from the *canonical* handle returned by the
store's ``_hold`` registrar.

Scope: any module that opens shared-memory segments (content match on
``SharedMemory`` / ``_open_segment``; fixtures can tag ``scope=shm``).

Checks, per function:

* **view-from-unheld** — ``np.ndarray(..., buffer=h.buf)`` where ``h``
  was opened in this function (``SharedMemory(...)`` /
  ``_open_segment(...)``) and never passed through a ``*hold*`` call.
* **leaked handle** — a handle opened into a local that is never
  closed, unlinked, held, returned, stored on an object, or passed to
  another call (ownership transfers count as escapes; a local that
  does none of these is unreachable after the function returns and
  the mapping leaks).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules.common import call_name

_OPENERS = ("SharedMemory", "_open_segment")


def _is_open_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node).rsplit(".", 1)[-1]
    return name in _OPENERS


def _is_hold_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    return "hold" in call_name(node).rsplit(".", 1)[-1]


@register
class ShmLifecycleRule(Rule):
    name = "shm-lifecycle"
    description = (
        "SharedMemory handles must be held/closed/unlinked or escape; "
        "NumPy views must come from held handles"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not (
            module.in_scope("shm")
            or "SharedMemory" in module.source
            or "_open_segment" in module.source
        ):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterable[Finding]:
        opened: Dict[str, ast.AST] = {}
        held: Set[str] = set()
        closed: Set[str] = set()
        escaped: Set[str] = set()
        views: List[ast.Call] = []

        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_open_call(node.value):
                        opened.setdefault(target.id, node)
                    if _is_hold_call(node.value):
                        held.add(target.id)
                elif isinstance(target, ast.Attribute):
                    # Stored on an object: ownership transferred.
                    if _is_open_call(node.value) or isinstance(node.value, ast.Name):
                        if isinstance(node.value, ast.Name):
                            escaped.add(node.value.id)
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                escaped.add(node.value.id)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                tail = name.rsplit(".", 1)[-1]
                if tail in ("close", "unlink") and "." in name:
                    closed.add(name.rsplit(".", 1)[0].split(".")[0])
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
                if tail == "ndarray":
                    for kw in node.keywords:
                        if kw.arg == "buffer":
                            views.append(node)

        for view in views:
            buffer = next(kw.value for kw in view.keywords if kw.arg == "buffer")
            if (
                isinstance(buffer, ast.Attribute)
                and buffer.attr == "buf"
                and isinstance(buffer.value, ast.Name)
            ):
                handle = buffer.value.id
                if handle in opened and handle not in held:
                    yield self.finding(
                        module,
                        view,
                        f"NumPy view built from unheld handle {handle!r}: build "
                        "views only from the canonical handle returned by "
                        "_hold(...) (a later close of a duplicate unmaps them)",
                    )

        for handle, node in opened.items():
            if handle in held or handle in closed or handle in escaped:
                continue
            yield self.finding(
                module,
                node,
                f"shared-memory handle {handle!r} is opened but never "
                "closed, unlinked, held or handed off on any path",
            )

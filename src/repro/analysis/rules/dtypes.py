"""dtype-discipline: id arrays in ``graph/`` are explicit int32.

Selections are pinned byte-identical across engines; that only holds
because every id-carrying array (CSR ``indices``, member lists, row
ids) is explicitly ``np.int32`` end to end — an implicit platform
default (int64 on linux) or a stray int64 in a selection output
doubles memory and breaks the parity contract at the serialisation
boundary.  ``indptr``/counts are deliberately int64 (edge counts
overflow int32 at paper scale) and are not id arrays.

Scope: modules tagged ``graph``.  Checks assignments whose target name
looks like an id array (``ids``, ``*_ids``, ``indices``, ``members``,
``rows``, ``cols``):

* constructors (``np.empty/zeros/ones/full/arange/array/asarray``)
  must pass an explicit ``dtype=``;
* fresh constructors (not ``asarray`` — normalising an *input* id
  array to int64 for index arithmetic is the repo's idiom) and
  ``.astype(...)`` casts feeding such a name must not be int64.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules.common import call_name, unparse

_ID_NAME_RE = re.compile(r"(^|_)(ids?|indices|members|rows|cols)$")
_CONSTRUCTORS = {"empty", "zeros", "ones", "full", "arange", "array", "asarray"}


def _target_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dtype_kwarg(call: ast.Call) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


@register
class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    description = (
        "id-array constructors in graph/ need explicit dtype=np.int32; "
        "int64 must not leak into id arrays"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_scope("graph"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            name = _target_name(node.targets[0])
            if name is None or not _ID_NAME_RE.search(name):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            callee = call_name(value)
            tail = callee.rsplit(".", 1)[-1]
            if tail in _CONSTRUCTORS and callee.split(".")[0] in ("np", "numpy"):
                dtype = _dtype_kwarg(value)
                if dtype is None:
                    yield self.finding(
                        module,
                        value,
                        f"id array {name!r} built by {callee} without an "
                        "explicit dtype= (platform default is int64; id "
                        "arrays are int32 by contract)",
                    )
                elif tail != "asarray" and "int64" in unparse(dtype):
                    yield self.finding(
                        module,
                        value,
                        f"id array {name!r} built with int64 dtype; id "
                        "arrays are int32 by contract",
                    )
            elif tail == "astype" and "int64" in unparse(value):
                yield self.finding(
                    module,
                    value,
                    f"id array {name!r} cast to int64; id arrays are "
                    "int32 by contract",
                )

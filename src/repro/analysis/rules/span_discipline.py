"""span-discipline: the observability contract of the serving layer.

Scope: modules tagged ``service`` (the handler check); the metric-name
check runs everywhere — a malformed name registered from any module
would poison the merged ``/metrics`` exposition.

Two checks:

* **Handlers open a request span.**  An async function that both reads
  an HTTP request (``read_http_request`` / ``_read_request``) and
  writes a response (``write_http_response``) is a connection handler;
  it must wrap the request in ``with ...request_scope(...)`` so every
  phase recorded below it lands in a trace and every response can carry
  the ``X-Repro-Trace`` join key.  Read-only wrappers (a helper that
  merely awaits the parser) are not handlers and are not flagged.

* **Metric names are well-formed.**  A literal first argument to
  ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` must match
  ``repro_[a-z0-9_]+`` — the same regex
  :mod:`repro.obs.metrics` enforces at runtime, enforced here so a
  misnamed instrument fails the lint lane instead of the first request
  that touches it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules.common import call_name

#: Mirrors ``repro.obs.metrics.METRIC_NAME_RE`` (kept literal so the
#: linter can run over a tree that does not import).
_METRIC_NAME_RE = re.compile(r"repro_[a-z0-9_]+\Z")

_METRIC_FACTORIES = {"counter", "gauge", "histogram"}
_REQUEST_READERS = {"read_http_request", "_read_request"}
_RESPONSE_WRITERS = {"write_http_response"}


def _calls(func: ast.AST) -> Iterator[str]:
    """Leaf callee names of every call in ``func``'s subtree."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name:
                yield name.rsplit(".", 1)[-1]


def _opens_request_scope(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and call_name(expr).rsplit(
                ".", 1
            )[-1].endswith("request_scope"):
                return True
    return False


@register
class SpanDisciplineRule(Rule):
    name = "span-discipline"
    description = (
        "HTTP handlers must open a request span; metric names must "
        "match repro_[a-z0-9_]+"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            name = call_name(node)
            if "." not in name:  # bare helpers are not the registry API
                continue
            if name.rsplit(".", 1)[-1] not in _METRIC_FACTORIES:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(
                first.value, str
            ):
                continue
            if not _METRIC_NAME_RE.fullmatch(first.value):
                yield self.finding(
                    module,
                    node,
                    f"metric name {first.value!r} must match "
                    f"{_METRIC_NAME_RE.pattern!r} (lowercase, "
                    "repro_-prefixed)",
                )

        if not module.in_scope("service"):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            names = set(_calls(func))
            if not (names & _REQUEST_READERS and names & _RESPONSE_WRITERS):
                continue
            if not _opens_request_scope(func):
                yield self.finding(
                    module,
                    func,
                    f"HTTP handler {func.name!r} reads and answers "
                    "requests without opening a request span (wrap the "
                    "request in `with trace.request_scope(...)`)",
                )

"""blocking-in-async: no blocking calls on the asyncio event loop.

Scope: modules tagged ``service``.  The front end is a single asyncio
loop; one ``time.sleep`` in a handler stalls every in-flight request
and every heartbeat.  Blocking work belongs on the executor
(``loop.run_in_executor``) or behind ``await asyncio.sleep(...)``.

Flags, lexically inside ``async def`` bodies (nested sync ``def``
subtrees are excluded — they run wherever they are called from):

* ``time.sleep(...)``
* builtin ``open(...)``
* ``socket.*`` constructors/connects
* ``subprocess.*`` and ``os.system``
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules.common import call_name

_BLOCKING_PREFIXES = ("socket.", "subprocess.")
_BLOCKING_EXACT = {"time.sleep", "os.system", "open"}


def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk an async function's body, skipping nested function defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingInAsyncRule(Rule):
    name = "blocking-in-async"
    description = (
        "time.sleep / blocking socket, file and subprocess calls inside "
        "async def in the service layer"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_scope("service"):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _async_body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in _BLOCKING_EXACT or name.startswith(_BLOCKING_PREFIXES):
                    yield self.finding(
                        module,
                        node,
                        f"blocking call {name}(...) inside async def "
                        f"{func.name!r} stalls the event loop (use "
                        "await asyncio.sleep / loop.run_in_executor)",
                    )

"""checkpoint-in-hot-loop: hot-path loops must reach a cancellation
checkpoint.

Scope: modules tagged ``hot-path`` (``repro/graph/`` and the core
selection paths).  The serving layer's deadline contract — a timed-out
request frees its executor slot within one checkpoint interval —
only holds if every data-sized loop on the selection path checkpoints.

Candidate loops (the shapes that scale with the data):

* every ``while`` loop;
* ``for`` over ``range(...)`` with a non-constant bound (chunked
  sweeps over ``n``);
* ``for`` over ``enumerate(...)`` (per-cell / per-row sweeps).

A candidate passes when its body contains a checkpoint call
(``token.checkpoint()`` or any ``*checkpoint*`` helper) — or when an
enclosing loop already checkpoints, which matches the repo's chunk
granularity: the outer sweep checkpoints once per chunk and inner
loops ride inside that budget.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules.common import (
    call_name,
    contains_checkpoint,
    iter_with_ancestors,
)


def _is_candidate(node: ast.AST) -> bool:
    if isinstance(node, ast.While):
        return True
    if not isinstance(node, ast.For):
        return False
    iterator = node.iter
    if not isinstance(iterator, ast.Call):
        return False
    name = call_name(iterator)
    if name == "enumerate":
        return True
    if name == "range":
        return any(not isinstance(arg, ast.Constant) for arg in iterator.args)
    return False


@register
class CheckpointInHotLoopRule(Rule):
    name = "checkpoint-in-hot-loop"
    description = (
        "data-sized loops in hot-path modules must contain (or sit "
        "inside a loop containing) a cancellation checkpoint"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.in_scope("hot-path"):
            return
        for node, ancestors in iter_with_ancestors(module.tree):
            if not _is_candidate(node):
                continue
            if contains_checkpoint(node):
                continue
            enclosing_loops: List[ast.AST] = [
                a for a in ancestors if isinstance(a, (ast.For, ast.While))
            ]
            if any(contains_checkpoint(loop) for loop in enclosing_loops):
                continue
            shape = "while loop" if isinstance(node, ast.While) else "for loop"
            yield self.finding(
                module,
                node,
                f"hot-path {shape} has no reachable cancellation checkpoint "
                "(call token.checkpoint() every CHECKPOINT_EVERY iterations)",
            )

"""Shared AST helpers for the repo-aware rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "call_name",
    "caught_names",
    "contains_checkpoint",
    "dotted",
    "iter_with_ancestors",
    "unparse",
    "with_context_exprs",
]


def iter_with_ancestors(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Depth-first walk yielding ``(node, ancestors)`` (outermost first)."""
    stack: List[Tuple[ast.AST, List[ast.AST]]] = [(tree, [])]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + [node]
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_ancestors))


def unparse(node: Optional[ast.AST]) -> str:
    """``ast.unparse`` with whitespace normalised (empty for None)."""
    if node is None:
        return ""
    return ast.unparse(node).replace(" ", "")


def dotted(node: ast.AST) -> str:
    """The dotted name of a Name/Attribute chain (``""`` otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    """The dotted callee name of a call (``""`` for computed callees)."""
    return dotted(node.func)


def with_context_exprs(ancestors: Sequence[ast.AST]) -> Set[str]:
    """Unparsed context expressions of every enclosing ``with`` block."""
    exprs: Set[str] = set()
    for node in ancestors:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                exprs.add(unparse(item.context_expr))
    return exprs


def contains_checkpoint(node: ast.AST) -> bool:
    """True when the subtree calls a cancellation checkpoint.

    Matches ``<token>.checkpoint(...)`` and any callee whose final name
    component contains ``checkpoint`` (helper wrappers included).
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = call_name(child)
            if "checkpoint" in name.rsplit(".", 1)[-1]:
                return True
    return False


def caught_names(handler: ast.ExceptHandler) -> Set[str]:
    """The exception type names an ``except`` clause catches.

    A bare ``except:`` reports ``{"BaseException"}``; dotted types
    report their final component (``resilience.OperationCancelled`` ->
    ``OperationCancelled``).
    """
    if handler.type is None:
        return {"BaseException"}
    nodes = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: Set[str] = set()
    for node in nodes:
        name = dotted(node)
        if name:
            names.add(name.rsplit(".", 1)[-1])
    return names

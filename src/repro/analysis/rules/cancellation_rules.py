"""swallowed-cancellation: broad ``except`` must not eat OperationCancelled.

``OperationCancelled`` subclasses ``RuntimeError``, so any
``except Exception`` (or broader) on a code path that can checkpoint
silently converts a cooperative cancellation into "keep going" — the
request's deadline contract (free the slot within one checkpoint
interval, answer 408/504) quietly breaks.

Scope: modules that are cancellation-aware (reference
``OperationCancelled`` or ``current_token``; fixtures can tag
``scope=cancellation``).

A handler catching ``OperationCancelled`` / ``RuntimeError`` /
``Exception`` / ``BaseException`` (or bare) is flagged unless it:

* re-raises (any ``raise`` in the handler body), or
* binds the exception and actually uses it (mapping it to a response
  is handling, not dropping), or
* follows an earlier handler in the same ``try`` that catches
  ``OperationCancelled`` specifically (the broad clause can no longer
  see it), or
* guards a pure-cleanup ``try`` body (a lone ``close``/``abandon``/
  ``unlink``/``cancel``-style call with a ``pass`` handler —
  non-cancellable teardown that must not mask the original error).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules.common import call_name, caught_names

_BROAD = {"Exception", "BaseException", "RuntimeError"}
_CLEANUP_CALLS = {
    "abandon",
    "cancel",
    "close",
    "join",
    "kill",
    "release",
    "set",
    "shutdown",
    "stop",
    "terminate",
    "unlink",
    "_unlink_quiet",
}


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _handler_uses_binding(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


def _is_cleanup_guard(try_node: ast.Try, handler: ast.ExceptHandler) -> bool:
    if not all(isinstance(stmt, ast.Pass) for stmt in handler.body):
        return False
    for stmt in try_node.body:
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return False
        tail = call_name(stmt.value).rsplit(".", 1)[-1]
        if tail not in _CLEANUP_CALLS:
            return False
    return bool(try_node.body)


@register
class SwallowedCancellationRule(Rule):
    name = "swallowed-cancellation"
    description = (
        "except clauses that catch and drop OperationCancelled "
        "(directly or via a broad Exception/RuntimeError catch)"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not (
            module.in_scope("cancellation")
            or "OperationCancelled" in module.source
            or "current_token" in module.source
        ):
            return
        for try_node in ast.walk(module.tree):
            if not isinstance(try_node, ast.Try):
                continue
            cancellation_handled = False
            for handler in try_node.handlers:
                caught = caught_names(handler)
                explicit = "OperationCancelled" in caught
                broad = bool(caught & _BROAD)
                if explicit and (
                    _handler_reraises(handler) or _handler_uses_binding(handler)
                ):
                    cancellation_handled = True
                    continue
                if not explicit and not broad:
                    continue
                if not explicit and cancellation_handled:
                    continue  # a specific handler above already took it
                if _handler_reraises(handler) or _handler_uses_binding(handler):
                    continue
                if _is_cleanup_guard(try_node, handler):
                    continue
                what = (
                    "OperationCancelled"
                    if explicit
                    else f"{sorted(caught & _BROAD)[0]} (which includes "
                    "OperationCancelled)"
                )
                yield self.finding(
                    module,
                    handler,
                    f"except clause catches and drops {what}: re-raise "
                    "cancellations (`except OperationCancelled: raise`) or "
                    "handle the exception explicitly",
                )

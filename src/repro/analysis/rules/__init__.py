"""The repo-aware rules; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401
    asyncio_blocking,
    cancellation_rules,
    checkpoints,
    dtypes,
    guarded,
    shm_rules,
    span_discipline,
)

"""guarded-attribute: mutations of ``_GUARDED_BY`` attrs outside their lock.

Classes that share state across threads declare the guard map as a
class attribute::

    class SharedCacheManager:
        _GUARDED_BY = {
            "hits": "self._lock",       # mutate only under this lock
            "inflight": "self._counter_lock",
            "_rr": "event-loop",        # single-owner: asyncio loop only
        }

Values are either the unparsed lock expression a mutation must be
lexically inside a ``with`` of, or the sentinel ``"event-loop"`` for
attributes owned by the asyncio event loop (mutations must sit inside
an ``async def``, or a sync helper whose docstring states it runs on
the event loop).

A helper that is documented to run with the lock already held — its
docstring names the lock together with "held"/"holds" (e.g. "Caller
holds ``self._lock``.") — is exempt: the contract is the docstring,
and the rule makes breaking it visible at every new call site that
forgets a ``with``.  ``__init__`` is exempt (no sharing yet).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.analysis.core import Finding, ModuleInfo, Rule, register
from repro.analysis.rules.common import iter_with_ancestors, with_context_exprs

EVENT_LOOP = "event-loop"


def _guard_map(cls: ast.ClassDef) -> Dict[str, str]:
    """The ``_GUARDED_BY`` literal dict declared in a class body."""
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "_GUARDED_BY"
            and isinstance(stmt.value, ast.Dict)
        ):
            out: Dict[str, str] = {}
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if isinstance(key, ast.Constant) and isinstance(value, ast.Constant):
                    out[str(key.value)] = str(value.value)
            return out
    return {}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` mutates ``self.attr`` (directly or via
    subscript, e.g. ``self.requests[k] = ...``)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutation_targets(node: ast.AST) -> List[ast.AST]:
    if isinstance(node, ast.Assign):
        targets: List[ast.AST] = []
        for target in node.targets:
            targets.extend(target.elts if isinstance(target, ast.Tuple) else [target])
        return targets
    if isinstance(node, ast.AugAssign):
        return [node.target]
    return []


def _docstring_grants(func: ast.AST, guard: str) -> bool:
    doc = (ast.get_docstring(func) or "").lower()
    if not doc:
        return False
    if guard == EVENT_LOOP:
        return "event loop" in doc
    tail = guard.rsplit(".", 1)[-1].lower()
    return tail in doc and ("held" in doc or "holds" in doc or "hold" in doc)


@register
class GuardedAttributeRule(Rule):
    name = "guarded-attribute"
    description = (
        "attributes declared in a class _GUARDED_BY map must be mutated "
        "under their lock (or on the event loop for 'event-loop' attrs)"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for cls_node in ast.walk(module.tree):
            if not isinstance(cls_node, ast.ClassDef):
                continue
            guards = _guard_map(cls_node)
            if not guards:
                continue
            yield from self._check_class(module, cls_node, guards)

    def _check_class(
        self, module: ModuleInfo, cls_node: ast.ClassDef, guards: Dict[str, str]
    ) -> Iterable[Finding]:
        for node, ancestors in iter_with_ancestors(cls_node):
            for target in _mutation_targets(node):
                attr = _self_attr(target)
                if attr is None or attr not in guards:
                    continue
                guard = guards[attr]
                funcs = [
                    a
                    for a in ancestors
                    if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                if not funcs:
                    continue  # class-body default, not shared state yet
                if any(f.name in ("__init__", "__post_init__") for f in funcs):
                    continue
                if guard == EVENT_LOOP:
                    if any(isinstance(f, ast.AsyncFunctionDef) for f in funcs):
                        continue
                    if any(_docstring_grants(f, guard) for f in funcs):
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"{cls_node.name}.{attr} is event-loop-owned but mutated "
                        "outside an async def (document a sync helper with "
                        "'event loop' in its docstring if it only runs there)",
                    )
                    continue
                if guard in with_context_exprs(ancestors):
                    continue
                if any(_docstring_grants(f, guard) for f in funcs):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{cls_node.name}.{attr} mutated outside `with {guard}` "
                    "(declared in _GUARDED_BY)",
                )

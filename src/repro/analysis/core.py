"""The analysis framework: rules, module model, suppressions, runners.

Everything here is stdlib-only (``ast`` + ``re``), so the lint lane
needs no third-party installs and the framework can lint a tree that
does not import.

A :class:`Rule` sees one :class:`ModuleInfo` at a time — the parsed
tree plus repo-aware *scopes* derived from the file's path (``service``
for ``repro/service/``, ``hot-path`` for the selection loops, ``graph``
for the adjacency engines).  Fixture files outside the repo layout can
opt into scopes explicitly with a marker comment near the top::

    # repro-lint: scope=hot-path,service

Findings land on a line; a trailing ``# repro-lint: disable=RULE --
reason`` comment on that line silences them.  The reason is mandatory.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "main",
    "register",
    "render_json",
    "render_text",
    "run_paths",
]

#: Matches suppression comments: the ``repro-lint:`` marker followed by
#: ``disable=<rules>`` and a ``-- reason`` tail (reason optional at
#: parse time; its absence becomes a ``suppression-format`` finding).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([\w,-]+)(?:\s*--\s*(.*\S))?\s*$"
)
_SCOPE_RE = re.compile(r"#\s*repro-lint:\s*scope=([\w,-]+)")

#: Directory/file heuristics mapping repo paths to scopes.  Matched on
#: the posix-normalised path suffix so absolute and relative inputs
#: agree.
_SCOPE_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("repro/service/", "service"),
    ("repro/graph/", "graph"),
    ("repro/graph/", "hot-path"),
    ("repro/core/greedy.py", "hot-path"),
    ("repro/core/zoom.py", "hot-path"),
    ("repro/core/basic.py", "hot-path"),
    # Streaming/dynamic maintenance loops run under request deadlines
    # just like the static heuristics.
    ("repro/core/extensions/", "hot-path"),
    ("repro/live/", "hot-path"),
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class _Suppression:
    rules: Set[str]
    reason: Optional[str]
    line: int
    used: bool = False


@dataclass
class ModuleInfo:
    """One parsed source file plus its lint metadata."""

    path: str
    source: str
    tree: ast.Module
    scopes: Set[str]
    suppressions: Dict[int, _Suppression] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def in_scope(self, scope: str) -> bool:
        return scope in self.scopes


class Rule:
    """Base class: subclasses set ``name``/``description`` and yield
    :class:`Finding` objects from :meth:`check`."""

    name: str = ""
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator adding one rule instance to the registry."""
    instance = rule_cls()
    if not instance.name:
        raise ValueError(f"{rule_cls.__name__} has no rule name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """The registered rules, name -> instance (registration order)."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Module loading
# ----------------------------------------------------------------------
def _path_scopes(path: str) -> Set[str]:
    posix = path.replace(os.sep, "/")
    scopes = {"all"}
    for pattern, scope in _SCOPE_PATTERNS:
        if pattern.endswith("/"):
            if pattern in posix:
                scopes.add(scope)
        elif posix.endswith(pattern):
            scopes.add(scope)
    return scopes


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every real comment token (docstrings that
    merely *mention* the lint syntax must not act as directives)."""
    out: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                out.append((token.start[0], token.string))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        pass
    return out


def _parse_suppressions(comments: List[Tuple[int, str]]) -> Dict[int, _Suppression]:
    out: Dict[int, _Suppression] = {}
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {name.strip() for name in match.group(1).split(",") if name.strip()}
        out[lineno] = _Suppression(rules=rules, reason=match.group(2), line=lineno)
    return out


def load_module(path: str) -> Optional[ModuleInfo]:
    """Parse one file into a :class:`ModuleInfo` (None for non-python)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    scopes = _path_scopes(path)
    comments = _comment_tokens(source)
    for lineno, text in comments:
        if lineno > 30:
            break
        marker = _SCOPE_RE.search(text)
        if marker is not None:
            scopes.update(s.strip() for s in marker.group(1).split(",") if s.strip())
    return ModuleInfo(
        path=path,
        source=source,
        tree=tree,
        scopes=scopes,
        suppressions=_parse_suppressions(comments),
    )


def _iter_python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
    return files


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def run_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint ``paths`` (files or directories) with the selected rules.

    Suppressed findings are dropped; suppressions without a reason, or
    naming an unknown rule, are reported as ``suppression-format``
    findings so the "every suppression carries a reason" contract is
    enforced by the tool itself.
    """
    registry = all_rules()
    if rules:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        selected = [registry[name] for name in rules]
    else:
        selected = list(registry.values())
    known_names = set(registry)

    findings: List[Finding] = []
    for path in _iter_python_files(paths):
        try:
            module = load_module(path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        raw: List[Finding] = []
        for rule in selected:
            raw.extend(rule.check(module))
        for finding in raw:
            suppression = module.suppressions.get(finding.line)
            if suppression is not None and finding.rule in suppression.rules:
                suppression.used = True
                continue
            findings.append(finding)
        for suppression in module.suppressions.values():
            if not suppression.reason:
                findings.append(
                    Finding(
                        rule="suppression-format",
                        path=path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "suppression must carry a reason: "
                            "# repro-lint: disable=RULE -- why"
                        ),
                    )
                )
            bogus = suppression.rules - known_names
            if bogus:
                findings.append(
                    Finding(
                        rule="suppression-format",
                        path=path,
                        line=suppression.line,
                        col=0,
                        message=f"unknown rule(s) in suppression: {', '.join(sorted(bogus))}",
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro-lint: clean (0 findings)"
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule}: {f.message}" for f in findings
    ]
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{name}={count}" for name, count in sorted(by_rule.items()))
    lines.append(f"repro-lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return json.dumps(
        {
            "version": 1,
            "findings": [f.to_dict() for f in findings],
            "counts": by_rule,
            "total": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# Entry point (shared by ``repro lint`` and ``python -m repro.analysis``)
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Repo-aware static analysis over the DisC tree.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    # Rules register on package import; direct ``core.main`` callers
    # (python -m repro.analysis goes through __init__) get them too.
    import repro.analysis  # noqa: F401

    if args.list_rules:
        for name, rule in all_rules().items():
            print(f"{name:26s} {rule.description}")
        return 0
    try:
        findings = run_paths(args.paths, rules=args.rules)
    except ValueError as exc:
        print(f"repro-lint: {exc}")
        return 2
    print(render_json(findings) if args.fmt == "json" else render_text(findings))
    return 1 if findings else 0

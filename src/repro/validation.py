"""Shared input validation for the public entry points.

Every DisC entry point takes a radius, and every one of them used to
guard it with ``radius < 0`` — a comparison NaN passes silently (all
comparisons with NaN are False), after which ``distance <= radius`` is
False for every pair, the neighborhood graph is empty, and the "diverse"
subset is the entire dataset.  Infinities pass the same guard and
produce the opposite degeneracy (one selected object after an all-pairs
adjacency build).  :func:`validate_radius` is the one guard all entry
points share: finite and non-negative, with ``0`` (and ``-0.0``) valid —
a zero radius means "only exact duplicates cover each other", which is a
legitimate degenerate query.
"""

from __future__ import annotations

import math
from numbers import Real

__all__ = ["validate_radius"]


def validate_radius(radius, *, name: str = "radius") -> float:
    """Check a radius is a finite, non-negative real; return it as float.

    Rejects NaN and ±inf explicitly (they slip through ``radius < 0``
    style guards), and negative values with the same message the
    individual guards used.  ``-0.0`` is accepted and normalised to
    ``0.0`` so downstream cache keys and comparisons see one zero.
    """
    if isinstance(radius, bool) or not isinstance(radius, Real):
        raise TypeError(f"{name} must be a real number, got {radius!r}")
    value = float(radius)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value + 0.0  # normalise -0.0 to 0.0

"""Internal helpers shared by the DisC heuristics.

Centralises the little rituals every algorithm repeats: snapshotting the
index cost counters, attaching/detaching colorings, issuing range queries
with index-capability-aware keyword arguments, and maintaining the
closest-black distance array of Section 5.2.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.cancellation import CHECKPOINT_EVERY, current_token
from repro.core.coloring import Color, Coloring
from repro.index.base import IndexStats, NeighborIndex

__all__ = [
    "attach_fresh_coloring",
    "query_neighbors",
    "csr_fast_path",
    "scan_cover",
    "LazyMaxHeap",
    "ClosestBlackTracker",
    "consume_stats",
]


def attach_fresh_coloring(index: NeighborIndex) -> Coloring:
    """Create an all-white coloring and subscribe the index to it."""
    coloring = Coloring(index.n)
    index.attach_coloring(coloring)
    return coloring


def query_neighbors(
    index: NeighborIndex,
    object_id: int,
    radius: float,
    *,
    prune: bool = False,
    bottom_up: bool = False,
    stop_at_grey: bool = False,
) -> List[int]:
    """``N_r(object_id)`` honouring whatever acceleration the index has.

    Simple indexes ignore the M-tree-specific options; this keeps the
    heuristics generic across substrates.
    """
    if index.supports_pruning:
        return index.range_query(
            object_id,
            radius,
            prune=prune,
            bottom_up=bottom_up,
            stop_at_grey=stop_at_grey,
        )
    return index.range_query(object_id, radius)


def csr_fast_path(
    index: NeighborIndex,
    radius: float,
    coloring: Coloring,
    *,
    prune: bool = False,
    build: bool = True,
):
    """The CSR adjacency when the vectorised fast path is applicable.

    Tree-specific query options (pruning) and coloring listeners (the
    M-tree's per-leaf white counters) both require the per-query
    protocol, so either disables the fast path; indexes without a CSR
    engine return None anyway.  Selection semantics are identical on
    both paths — this is purely an execution-strategy switch.
    """
    if prune or coloring.has_listeners():
        return None
    return index.csr_neighborhood(radius, build=build)


def scan_cover(
    index: NeighborIndex,
    radius: float,
    coloring: Coloring,
    *,
    prune: bool = False,
    tracker: Optional["ClosestBlackTracker"] = None,
    selected: Optional[List[int]] = None,
    csr=None,
) -> List[int]:
    """Index-order white scan: blacken every still-white object and grey
    its neighborhood.

    This is the shared engine of Basic-DisC and the arbitrary zoom-in
    pass.  With a CSR adjacency the neighbor greying is one masked
    assignment per selection; otherwise one range query per pick, as
    the paper describes.  Picks and final colors are identical on both
    paths (the scan order is the index's, never the adjacency's).
    """
    if selected is None:
        selected = []
    token = current_token()
    picks = 0
    if csr is not None:
        codes = coloring.codes_view()
        white_code = int(Color.WHITE)
        for object_id in index.ids():
            if codes[object_id] != white_code:
                continue
            if token is not None:
                if picks % CHECKPOINT_EVERY == 0:
                    token.checkpoint()
                picks += 1
            coloring.set_black(object_id)
            selected.append(object_id)
            neighbors = csr.neighbors(object_id)
            coloring.set_grey_many(neighbors[codes[neighbors] == white_code])
            index.stats.range_queries += 1
            if tracker is not None:
                tracker.record_black(object_id, neighbors)
    else:
        for object_id in index.ids():
            if not coloring.is_white(object_id):
                continue
            if token is not None:
                if picks % CHECKPOINT_EVERY == 0:
                    token.checkpoint()
                picks += 1
            coloring.set_black(object_id)
            selected.append(object_id)
            neighbors = query_neighbors(index, object_id, radius, prune=prune)
            for neighbor in neighbors:
                if coloring.is_white(neighbor):
                    coloring.set_grey(neighbor)
            if tracker is not None:
                tracker.record_black(object_id, neighbors)
    return selected


def consume_stats(index: NeighborIndex, before: IndexStats) -> IndexStats:
    """Counters consumed since ``before`` was snapshotted."""
    return index.stats - before


class LazyMaxHeap:
    """The sorted structure ``L'`` of Section 5.1.

    A max-heap over (priority, object id) with lazy invalidation: pushes
    are cheap, and :meth:`pop_valid` discards entries whose priority or
    eligibility has changed since they were pushed.  Ties break on the
    smaller object id, making every heuristic deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int]] = []

    def push(self, object_id: int, priority: int) -> None:
        heapq.heappush(self._heap, (-priority, object_id))

    def push_many(self, items: Iterable[Tuple[int, int]]) -> None:
        for object_id, priority in items:
            self.push(object_id, priority)

    def pop_valid(self, current_priority, is_eligible) -> Optional[int]:
        """Pop the best object whose stored priority is still current.

        ``current_priority(id)`` returns the live priority;
        ``is_eligible(id)`` filters by color.  Returns None when empty.
        """
        while self._heap:
            neg_priority, object_id = heapq.heappop(self._heap)
            if not is_eligible(object_id):
                continue
            if current_priority(object_id) != -neg_priority:
                continue  # stale entry; a fresher one is in the heap
            return object_id
        return None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class ClosestBlackTracker:
    """Maintains each object's distance to its closest black neighbor.

    This is the leaf-entry extension of Section 5.2: zooming-in compares
    these distances against the new radius to decide which grey objects
    stay covered.  When the producing run used pruned range queries the
    distances are upper bounds rather than exact minima (pruning hides
    some blacks); the ``exact`` flag records that, and zoom algorithms
    re-run the paper's post-processing step when it is False.
    """

    def __init__(self, index: NeighborIndex, exact: bool = True):
        self._index = index
        self.distances = np.full(index.n, np.inf)
        self.exact = exact

    def record_black(self, black_id: int, neighbor_ids) -> None:
        """Object ``black_id`` just turned black; its neighbors may now
        have a closer black.  ``neighbor_ids`` may be a list or array."""
        self.distances[black_id] = 0.0
        if len(neighbor_ids) == 0:
            return
        points = self._index.points
        metric = self._index.metric
        neighbor_ids = np.asarray(neighbor_ids, dtype=int)
        d = metric.to_point(points[neighbor_ids], points[black_id])
        self._index.stats.distance_computations += len(neighbor_ids)
        np.minimum.at(self.distances, neighbor_ids, d)

    def covered_at(self, object_id: int, radius: float) -> bool:
        return self.distances[object_id] <= radius

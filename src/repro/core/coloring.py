"""The white/grey/black(/red) coloring state machine of Section 2.3.

The paper describes every heuristic in terms of object colors:

* **white** — neither selected nor covered yet,
* **grey** — covered by some selected object,
* **black** — selected into the diverse subset ``S``,
* **red** — transient color used by zooming-out (Algorithm 3): objects
  that were black for the old radius and await re-examination.

:class:`Coloring` holds the color of every object and per-color counts,
and notifies registered listeners on every transition.  The M-tree index
subscribes to maintain its per-leaf white counters, which drive the
grey-subtree pruning rule of Section 5.1.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Iterator, List

import numpy as np

__all__ = ["Color", "Coloring"]


class Color(IntEnum):
    """Object colors in the order the paper introduces them."""

    WHITE = 0
    GREY = 1
    BLACK = 2
    RED = 3


#: listener(object_id, old_color, new_color)
Listener = Callable[[int, Color, Color], None]


class Coloring:
    """Colors for ``n`` objects with O(1) per-color counts.

    All objects start white.  Transitions are unrestricted (zooming
    recolors greys white and blacks red), but every change flows through
    :meth:`set_color` so listeners always observe a consistent stream.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self._codes = np.zeros(n, dtype=np.int8)
        self._counts = [n, 0, 0, 0]
        self._listeners: List[Listener] = []

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._codes.shape[0]

    def color_of(self, object_id: int) -> Color:
        return Color(int(self._codes[object_id]))

    def set_color(self, object_id: int, color: Color) -> None:
        old = Color(int(self._codes[object_id]))
        if old == color:
            return
        self._codes[object_id] = int(color)
        self._counts[int(old)] -= 1
        self._counts[int(color)] += 1
        for listener in self._listeners:
            listener(object_id, old, color)

    # Convenience transitions -------------------------------------------------
    def set_white(self, object_id: int) -> None:
        self.set_color(object_id, Color.WHITE)

    def set_grey(self, object_id: int) -> None:
        self.set_color(object_id, Color.GREY)

    def set_black(self, object_id: int) -> None:
        self.set_color(object_id, Color.BLACK)

    def set_red(self, object_id: int) -> None:
        self.set_color(object_id, Color.RED)

    # Batch transitions --------------------------------------------------------
    def set_many(self, ids, color: Color) -> None:
        """Recolor many objects at once.

        With listeners attached this degrades to per-object
        :meth:`set_color` calls so every subscriber still sees the full
        transition stream; without listeners (simple indexes) it is a
        single vectorised assignment plus a histogram update.  ``ids``
        must not contain duplicates (neighbor lists never do).
        """
        ids = np.asarray(ids, dtype=np.intp)
        if ids.size == 0:
            return
        if self._listeners:
            for object_id in ids:
                self.set_color(int(object_id), color)
            return
        old = self._codes[ids]
        changed = old != int(color)
        if not changed.all():
            ids = ids[changed]
            old = old[changed]
            if ids.size == 0:
                return
        self._codes[ids] = int(color)
        histogram = np.bincount(old, minlength=4)
        for code in range(4):
            self._counts[code] -= int(histogram[code])
        self._counts[int(color)] += ids.size

    def set_grey_many(self, ids) -> None:
        """Vectorised :meth:`set_grey` (the hot transition in covering)."""
        self.set_many(ids, Color.GREY)

    # Queries ------------------------------------------------------------------
    def is_white(self, object_id: int) -> bool:
        return self._codes[object_id] == int(Color.WHITE)

    def is_grey(self, object_id: int) -> bool:
        return self._codes[object_id] == int(Color.GREY)

    def is_black(self, object_id: int) -> bool:
        return self._codes[object_id] == int(Color.BLACK)

    def is_red(self, object_id: int) -> bool:
        return self._codes[object_id] == int(Color.RED)

    def count(self, color: Color) -> int:
        return self._counts[int(color)]

    @property
    def white_count(self) -> int:
        return self._counts[int(Color.WHITE)]

    def any_white(self) -> bool:
        return self._counts[int(Color.WHITE)] > 0

    def any_red(self) -> bool:
        return self._counts[int(Color.RED)] > 0

    def ids_of(self, color: Color) -> Iterator[int]:
        """All object ids currently holding ``color`` (ascending)."""
        return (int(i) for i in np.nonzero(self._codes == int(color))[0])

    def blacks(self) -> List[int]:
        """Selected objects, ascending by id."""
        return list(self.ids_of(Color.BLACK))

    def codes(self) -> np.ndarray:
        """A copy of the raw color codes (for snapshots / assertions)."""
        return self._codes.copy()

    def codes_view(self) -> np.ndarray:
        """The live ``int8`` color-code array (read-only by convention).

        The CSR fast paths index this directly for vectorised masks;
        all writes must still go through :meth:`set_color` /
        :meth:`set_many` so the per-color counts stay consistent.
        """
        return self._codes

    def white_mask(self) -> np.ndarray:
        """Boolean mask of the currently white objects."""
        return self._codes == int(Color.WHITE)

    # Listener management --------------------------------------------------------
    def has_listeners(self) -> bool:
        """Whether any subscriber (e.g. an M-tree) watches transitions."""
        return bool(self._listeners)

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def __repr__(self) -> str:
        return (
            f"Coloring(n={self.n}, white={self._counts[0]}, grey={self._counts[1]}, "
            f"black={self._counts[2]}, red={self._counts[3]})"
        )

"""Verification of DisC properties (Definition 1, Lemma 1).

These checkers are the ground truth the test suite holds every heuristic
to: *coverage* (every object has a selected object within r), and
*dissimilarity* (selected objects are pairwise farther than r).  By
Lemma 1 the two together are equivalent to the selected set being a
maximal independent set of ``G_{P,r}``, so a separate maximality check
is provided for emphasis and for testing coverage-only (r-C) subsets.

All checks are NumPy-vectorised and exact (no index involved, so index
bugs cannot hide result bugs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.distance import Metric, get_metric

__all__ = [
    "VerificationReport",
    "coverage_violations",
    "dissimilarity_violations",
    "is_maximal_independent",
    "verify_disc",
]


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_disc`.

    ``uncovered`` lists object ids with no selected object within r;
    ``too_close`` lists selected pairs at distance <= r.
    """

    radius: float
    n: int
    selected: List[int]
    uncovered: List[int] = field(default_factory=list)
    too_close: List[tuple] = field(default_factory=list)

    @property
    def is_covering(self) -> bool:
        return not self.uncovered

    @property
    def is_independent(self) -> bool:
        return not self.too_close

    @property
    def is_disc_diverse(self) -> bool:
        """Both Definition 1 conditions hold."""
        return self.is_covering and self.is_independent

    def __str__(self) -> str:
        status = "OK" if self.is_disc_diverse else "VIOLATED"
        return (
            f"DisC verification [{status}] r={self.radius} |S|={len(self.selected)} "
            f"uncovered={len(self.uncovered)} too_close={len(self.too_close)}"
        )


def _selected_matrix(points: np.ndarray, selected: Sequence[int]) -> np.ndarray:
    ids = np.asarray(list(selected), dtype=int)
    if ids.size and (ids.min() < 0 or ids.max() >= points.shape[0]):
        raise IndexError("selected ids out of range")
    return points[ids]


def coverage_violations(
    points: np.ndarray, metric, selected: Sequence[int], radius: float
) -> List[int]:
    """Object ids not within ``radius`` of any selected object.

    An empty selection leaves everything uncovered (unless there are no
    objects at all).
    """
    metric = get_metric(metric)
    points = np.asarray(points)
    if not list(selected):
        return list(range(points.shape[0]))
    closest = np.full(points.shape[0], np.inf)
    for sel in selected:
        d = metric.to_point(points, points[sel])
        np.minimum(closest, d, out=closest)
    return [int(i) for i in np.nonzero(closest > radius)[0]]


def dissimilarity_violations(
    points: np.ndarray, metric, selected: Sequence[int], radius: float
) -> List[tuple]:
    """Selected pairs (i, j), i < j, with ``dist <= radius``."""
    metric = get_metric(metric)
    points = np.asarray(points)
    ids = list(selected)
    if len(ids) != len(set(ids)):
        raise ValueError("selected contains duplicate ids")
    if len(ids) < 2:
        return []
    matrix = metric.pairwise(_selected_matrix(points, ids))
    violations = []
    for a in range(len(ids)):
        for b in range(a + 1, len(ids)):
            if matrix[a, b] <= radius:
                violations.append((ids[a], ids[b]))
    return violations


def is_maximal_independent(
    points: np.ndarray, metric, selected: Sequence[int], radius: float
) -> bool:
    """Whether ``selected`` is a *maximal* independent set of G_{P,r}.

    By Lemma 1 this is equivalent to (independent and dominating); we
    check it directly: independent, and no outside object could be added
    without breaking independence (i.e. every outside object has a
    selected neighbor — which is exactly coverage).
    """
    return not dissimilarity_violations(
        points, metric, selected, radius
    ) and not coverage_violations(points, metric, selected, radius)


def verify_disc(
    points: np.ndarray, metric, selected: Sequence[int], radius: float
) -> VerificationReport:
    """Full Definition 1 verification; see :class:`VerificationReport`."""
    points = np.asarray(points)
    return VerificationReport(
        radius=radius,
        n=points.shape[0],
        selected=list(selected),
        uncovered=coverage_violations(points, metric, selected, radius),
        too_close=dissimilarity_violations(points, metric, selected, radius),
    )

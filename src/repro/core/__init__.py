"""The paper's primary contribution: DisC diversity heuristics, zooming,
verification and theoretical bounds."""

from repro.core.basic import basic_disc
from repro.core.bounds import (
    GOLDEN_RATIO,
    harmonic_number,
    lemma4_independent_annulus,
    lemma5_zoom_in_bound,
    lemma6_zoom_out_removed_bound,
    lemma7_maxmin_factor,
    max_independent_neighbors,
    theorem1_ratio,
    theorem2_ratio,
)
from repro.core.coloring import Color, Coloring
from repro.core.greedy import fast_c, greedy_c, greedy_cover, greedy_disc
from repro.core.result import DiscResult, closest_black_distances
from repro.core.verify import (
    VerificationReport,
    coverage_violations,
    dissimilarity_violations,
    is_maximal_independent,
    verify_disc,
)
from repro.core.zoom import local_zoom, recompute_closest_black, zoom_in, zoom_out

__all__ = [
    "basic_disc",
    "greedy_disc",
    "greedy_c",
    "fast_c",
    "greedy_cover",
    "zoom_in",
    "zoom_out",
    "local_zoom",
    "recompute_closest_black",
    "Color",
    "Coloring",
    "DiscResult",
    "closest_black_distances",
    "verify_disc",
    "VerificationReport",
    "coverage_violations",
    "dissimilarity_violations",
    "is_maximal_independent",
    "max_independent_neighbors",
    "theorem1_ratio",
    "theorem2_ratio",
    "harmonic_number",
    "lemma4_independent_annulus",
    "lemma5_zoom_in_bound",
    "lemma6_zoom_out_removed_bound",
    "lemma7_maxmin_factor",
    "GOLDEN_RATIO",
]

"""Theoretical bounds from the paper (Theorems 1-2, Lemmas 2-7).

Every bound the paper proves is implemented as a callable so tests and
benchmarks can check the heuristics against theory:

* ``max_independent_neighbors`` — the constant B of Theorem 1 (5 for
  Euclidean d=2 by Lemma 2, 7 for Manhattan d=2 by Lemma 3, 24 for
  Euclidean d=3 via packing arguments).
* ``theorem1_ratio`` — any r-DisC subset is at most B times a minimum.
* ``theorem2_ratio`` — Greedy-C is within ln(Δ) of the minimum r-DisC
  subset (Δ = max neighborhood size), via the harmonic-number argument.
* ``lemma4_independent_annulus`` — |NI_{r1,r2}| bounds used by the
  zooming lemmas, for Euclidean and Manhattan metrics in d=2.
* ``lemma5_zoom_in_bound`` / ``lemma6_zoom_out_removed_bound`` — size
  relations between S_r and S_{r'}.
* ``lemma7_maxmin_factor`` — DisC's fMin is within a factor 3 of the
  optimal MaxMin value for the same k.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.distance import (
    EuclideanMetric,
    HammingMetric,
    ManhattanMetric,
    Metric,
    get_metric,
)

__all__ = [
    "max_independent_neighbors",
    "theorem1_ratio",
    "harmonic_number",
    "theorem2_ratio",
    "lemma4_independent_annulus",
    "lemma5_zoom_in_bound",
    "lemma6_zoom_out_removed_bound",
    "lemma7_maxmin_factor",
    "GOLDEN_RATIO",
]

#: β = (1 + √5)/2 from Lemma 4(i) — it appears as 2·cos(π/5).
GOLDEN_RATIO = (1.0 + math.sqrt(5.0)) / 2.0


def max_independent_neighbors(metric, dim: int) -> Optional[int]:
    """The constant B: the most pairwise-independent neighbors any object
    can have.

    Returns None when the paper proves no bound for the combination (the
    Hamming metric has B = dim trivially bounded combinatorially? No —
    the paper gives none, so we return None and callers must handle it).
    """
    metric = get_metric(metric)
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if isinstance(metric, EuclideanMetric):
        if dim == 1:
            return 2
        if dim == 2:
            return 5  # Lemma 2
        if dim == 3:
            return 24  # packing / solid-angle argument cited in Section 2.3
        return None
    if isinstance(metric, ManhattanMetric):
        if dim == 1:
            return 2
        if dim == 2:
            return 7  # Lemma 3
        return None
    return None


def theorem1_ratio(metric, dim: int) -> Optional[int]:
    """Theorem 1: |S| <= B * |S*| for any r-DisC diverse subset S."""
    return max_independent_neighbors(metric, dim)


def harmonic_number(n: int) -> float:
    """H(n) = 1 + 1/2 + ... + 1/n (H(0) = 0)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return sum(1.0 / i for i in range(1, n + 1))


def theorem2_ratio(max_degree: int) -> float:
    """Theorem 2: Greedy-C's size is within H(Δ + 1) ≈ ln Δ of |S*|.

    ``max_degree`` is Δ, the maximum neighborhood size in G_{P,r}.
    """
    if max_degree < 0:
        raise ValueError(f"max_degree must be non-negative, got {max_degree}")
    return harmonic_number(max_degree + 1)


def lemma4_independent_annulus(metric, r1: float, r2: float) -> Optional[int]:
    """Upper bound on |NI_{r1,r2}|: objects within r2 of a point that are
    pairwise farther than r1 apart (d = 2 only).

    Euclidean: 9 * ceil(log_β(r2/r1)) with β the golden ratio.
    Manhattan: 4 * Σ_{i=1..γ} (2i + 1) with γ = ceil((r2 - r1)/r1).
    """
    if r1 <= 0:
        raise ValueError(f"r1 must be positive, got {r1}")
    if r2 < r1:
        raise ValueError(f"requires r2 >= r1, got r1={r1}, r2={r2}")
    metric = get_metric(metric)
    if isinstance(metric, EuclideanMetric):
        ratio = r2 / r1
        if ratio <= 1.0:
            return 9  # degenerate annulus still admits the disk bound
        return 9 * math.ceil(math.log(ratio, GOLDEN_RATIO))
    if isinstance(metric, ManhattanMetric):
        gamma = math.ceil((r2 - r1) / r1)
        return 4 * sum(2 * i + 1 for i in range(1, gamma + 1))
    return None


def lemma5_zoom_in_bound(metric, r_new: float, r_old: float, old_size: int) -> Optional[int]:
    """Lemma 5(ii): |S_{r'}| <= |NI_{r', r}| * |S_r| for r' < r."""
    if old_size < 0:
        raise ValueError(f"old_size must be non-negative, got {old_size}")
    annulus = lemma4_independent_annulus(metric, r_new, r_old)
    if annulus is None:
        return None
    return annulus * old_size


def lemma6_zoom_out_removed_bound(metric, r_old: float, r_new: float) -> Optional[int]:
    """Lemma 6(i): at most |NI_{r, r'}| objects leave S_r when zooming
    out to r' > r; Lemma 6(ii) adds that each removal admits at most
    B - 1 replacements."""
    return lemma4_independent_annulus(metric, r_old, r_new)


def lemma7_maxmin_factor() -> float:
    """Lemma 7: the optimal MaxMin distance λ* for k = |S| satisfies
    λ* <= 3 λ where λ is the DisC subset's minimum pairwise distance."""
    return 3.0

"""The greedy DisC heuristics (Sections 2.3 and 5.1).

``Greedy-DisC`` selects, at every step, the white object covering the
most uncovered (white) objects.  Its M-tree realisations differ in how
they keep the white-neighborhood sizes current after each selection:

* **Grey-Greedy-DisC** — one range query around every newly-grey object,
  decrementing the counts of its white neighbors;
* **White-Greedy-DisC** — one range query ``Q(p_i, 2r)`` to find the
  remaining white objects whose counts may have changed, then an exact
  recount for each;
* **Lazy-Grey / Lazy-White** — the same with shrunken update radii
  (``r/2`` and ``3r/2``), trading slightly larger solutions for fewer
  node accesses (Figure 8 / Table 3).

``Greedy-C`` relaxes the dissimilarity condition: both white *and* grey
objects are candidates, so the selected set is covering but not
necessarily independent (an r-C diverse subset).  ``Fast-C`` accelerates
it with bottom-up range queries that stop climbing at the first grey
internal node, accepting that distant neighbors may be missed.

All variants share the :func:`greedy_cover` engine, which the zooming
algorithms of Section 3 reuse for their greedy passes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cancellation import CHECKPOINT_EVERY, current_token
from repro.core._common import (
    ClosestBlackTracker,
    LazyMaxHeap,
    attach_fresh_coloring,
    consume_stats,
    csr_fast_path,
    query_neighbors,
)
from repro.core.coloring import Color, Coloring
from repro.core.result import DiscResult
from repro.graph.blocked import BlockedNeighborhood
from repro.graph.priority import MaxSegmentTree
from repro.index.base import NeighborIndex
from repro.validation import validate_radius

__all__ = [
    "greedy_disc",
    "greedy_c",
    "fast_c",
    "greedy_cover",
    "CSR_SELECTION_STRATEGY",
]

#: Execution strategy of the CSR greedy-cover loop: "lazy", "eager" or
#: "auto".  All are byte-identical in output (the parity suite runs
#: each); on a :class:`~repro.graph.blocked.BlockedNeighborhood` every
#: name resolves to the block-aggregated eager sweep (see
#: :func:`_greedy_cover_csr`).  "auto" follows the bench harness
#: (``selection_strategy_bench``): the eager decrement sweep costs
#: O(nnz) with a small vectorised constant and wins at moderate
#: degrees, while lazy verified-pops touch only the rows they inspect
#: and win on the dense clustered graphs where O(nnz) explodes.
CSR_SELECTION_STRATEGY = "auto"

#: "auto" thresholds, fitted to the head-to-head strategy timings in
#: results/BENCH_perf.json.  Below MIN_NNZ both strategies run in tens
#: of milliseconds and eager's single sweep has the smaller constant.
#: Above it the degree dispersion decides: on near-uniform degree
#: distributions (coefficient of variation under MIN_DEGREE_CV —
#: uniform data sits near 0.13, the blob-clustered family near 0.47,
#: cities near 1.5) the tree top is crowded with near-ties, lazy pops
#: devolve into long lowering cascades, and the eager O(nnz) sweep
#: stays ahead at every recorded scale; on skewed multi-density graphs
#: (clustered, cities) lazy wins up to 3x because it never touches
#: most of the edge mass.
LAZY_STRATEGY_MIN_NNZ = 2_000_000
LAZY_STRATEGY_MIN_DEGREE_CV = 0.3


def greedy_cover(
    index: NeighborIndex,
    radius: float,
    coloring: Coloring,
    *,
    include_grey_candidates: bool = False,
    update_variant: str = "grey",
    lazy: bool = False,
    prune: bool = False,
    bottom_up: bool = False,
    stop_at_grey: bool = False,
    initial_counts: Optional[np.ndarray] = None,
    tracker: Optional[ClosestBlackTracker] = None,
    selected: Optional[List[int]] = None,
) -> List[int]:
    """Greedy covering engine: select candidates until no white remains.

    Parameters
    ----------
    coloring:
        Pre-seeded coloring (all-white for the full heuristics; partially
        grey/black for zooming passes).  Mutated in place.
    include_grey_candidates:
        False → r-DisC mode (white candidates only, output independent);
        True → r-C mode (Greedy-C / Fast-C / zoom-out pass 2 fallback).
    update_variant:
        "grey" or "white" — the count-maintenance strategy above.
    lazy:
        Shrink the update radii to ``r/2`` / ``3r/2``.
    prune, bottom_up, stop_at_grey:
        Range-query options forwarded to the index (M-tree only).
    initial_counts:
        Per-object white-neighborhood sizes to seed the priority
        structure ``L'``; computed on demand for current candidates when
        omitted.
    tracker:
        Optional closest-black distance maintenance for later zooming.
    selected:
        List receiving the selections in order (created if omitted).

    Returns the selection list.
    """
    if update_variant not in ("grey", "white"):
        raise ValueError(f"unknown update_variant {update_variant!r}")
    radius = validate_radius(radius)

    # Vectorised execution over the CSR engine when the index provides
    # one and the configuration keeps per-query semantics unnecessary
    # (the default grey update at the full radius, no tree options).
    # Full runs (seeded counts) amortise an adjacency build; zoom
    # passes without seeds usually touch few objects, so they only
    # consume a CSR that already exists.
    if update_variant == "grey" and not lazy and not bottom_up and not stop_at_grey:
        csr = csr_fast_path(
            index, radius, coloring, prune=prune,
            build=initial_counts is not None,
        )
        if csr is not None:
            return _greedy_cover_csr(
                index,
                csr,
                coloring,
                include_grey_candidates=include_grey_candidates,
                initial_counts=initial_counts,
                tracker=tracker,
                selected=selected,
            )

    def is_candidate(object_id: int) -> bool:
        if coloring.is_white(object_id):
            return True
        return include_grey_candidates and coloring.is_grey(object_id)

    counts = _seed_counts(
        index, radius, coloring, is_candidate, initial_counts, prune=prune
    )
    heap = LazyMaxHeap()
    seed_token = current_token()
    for object_id in range(index.n):
        if seed_token is not None and object_id % CHECKPOINT_EVERY == 0:
            seed_token.checkpoint()
        if is_candidate(object_id):
            heap.push(object_id, int(counts[object_id]))

    if selected is None:
        selected = []

    def eligible(object_id: int) -> bool:
        if coloring.is_white(object_id):
            return True
        if include_grey_candidates and coloring.is_grey(object_id):
            # A grey candidate that covers nothing white is useless and
            # would stall progress; require a positive gain.
            return counts[object_id] > 0
        return False

    token = current_token()
    pops = 0
    while coloring.any_white():
        if token is not None:
            if pops % CHECKPOINT_EVERY == 0:
                token.checkpoint()
            pops += 1
        pick = heap.pop_valid(lambda i: int(counts[i]), eligible)
        if pick is None:
            raise RuntimeError(
                "greedy cover ran out of candidates with white objects left; "
                "the priority structure is inconsistent"
            )
        was_white = coloring.is_white(pick)
        coloring.set_black(pick)
        selected.append(pick)
        neighbors = query_neighbors(
            index, pick, radius, prune=prune, bottom_up=bottom_up,
            stop_at_grey=stop_at_grey,
        )
        newly_grey = [n for n in neighbors if coloring.is_white(n)]
        for neighbor in newly_grey:
            coloring.set_grey(neighbor)
        if tracker is not None:
            tracker.record_black(pick, neighbors)

        if update_variant == "grey":
            _update_counts_grey(
                index, radius, coloring, counts, heap, is_candidate,
                pick, was_white, neighbors, newly_grey,
                lazy=lazy, prune=prune, bottom_up=bottom_up,
                stop_at_grey=stop_at_grey,
            )
        else:
            _update_counts_white(
                index, radius, coloring, counts, heap, is_candidate,
                pick, lazy=lazy, prune=prune,
            )
    return selected


def _greedy_cover_csr(
    index: NeighborIndex,
    csr,
    coloring: Coloring,
    *,
    include_grey_candidates: bool,
    initial_counts: Optional[np.ndarray],
    tracker: Optional[ClosestBlackTracker],
    selected: Optional[List[int]],
    strategy: Optional[str] = None,
) -> List[int]:
    """Vectorised :func:`greedy_cover` over a CSR adjacency.

    Selection order is *identical* to the heap-driven path: the next
    pick is the eligible candidate with the maximum white-neighborhood
    count, ties broken by the smaller object id — both strategies drive
    a :class:`~repro.graph.priority.MaxSegmentTree` whose argmax breaks
    ties exactly like ``np.argmax`` (lowest id wins).

    ``strategy`` (default :data:`CSR_SELECTION_STRATEGY`):

    ``"eager"``
        the grey update rule verbatim — every object that stops being
        white decrements each adjacent candidate once, as one CSR
        gather per step.  Work is O(nnz) over the whole run.
    ``"lazy"``
        verified pops (Minoux's lazy greedy): tree values are stale
        upper bounds — counts only ever decrease — so the argmax is
        popped, its white-neighbor count recounted from its own CSR
        row, and the pick accepted only when the stored value is still
        current; otherwise the lowered value goes back into the tree
        and the argmax repeats.  A pick is accepted exactly when its
        verified count is the true maximum and every lower-id tie has
        already been verified down, so the sequence matches the eager
        one element for element while touching only the rows it
        inspects.
    """
    white_code = int(Color.WHITE)
    grey_code = int(Color.GREY)
    codes = coloring.codes_view()
    n = csr.n
    if strategy is None:
        strategy = CSR_SELECTION_STRATEGY
    if strategy not in ("auto", "lazy", "eager"):
        raise ValueError(
            f'strategy must be "auto", "lazy" or "eager", got {strategy!r}'
        )
    if isinstance(csr, BlockedNeighborhood):
        # The blocked engine has one strategy: the eager sweep, whose
        # decrements collapse into per-block deltas (each dense side is
        # touched once per step, not once per source).  The lazy
        # verified-pop recount would re-materialise dense rows per pop
        # — exactly the edge expansion the blocks avoid — so both
        # strategy names resolve to the block-aggregated sweep.
        strategy = "eager"
    elif strategy == "auto":
        strategy = "eager"
        if csr.nnz >= LAZY_STRATEGY_MIN_NNZ:
            degrees = csr.degrees
            mean = csr.nnz / n
            if float(degrees.std()) >= LAZY_STRATEGY_MIN_DEGREE_CV * mean:
                strategy = "lazy"

    if initial_counts is not None:
        counts = np.asarray(initial_counts, dtype=np.int64).copy()
        if counts.shape != (n,):
            raise ValueError(
                f"initial_counts must have shape ({n},), got {counts.shape}"
            )
    else:
        counts = csr.neighbor_counts(coloring.white_mask()).astype(np.int64)
        # The legacy path issues one seeding range query per candidate.
        n_candidates = int(np.count_nonzero(codes == white_code))
        if include_grey_candidates:
            n_candidates += int(np.count_nonzero(codes == grey_code))
        index.stats.range_queries += n_candidates

    if selected is None:
        selected = []

    # scores[i] = counts[i] while i is an eligible candidate, else -1
    # (under the lazy strategy scores are upper bounds between pops).
    if include_grey_candidates:
        eligible = (codes == white_code) | (
            (codes == grey_code) & (counts > 0)
        )
        # r-C mode: greys stay candidates, only picks leave the pool.
        candidate_mask = (codes == white_code) | (codes == grey_code)
    else:
        eligible = codes == white_code
        candidate_mask = eligible.copy()
    scores = np.where(eligible, counts, -1)
    tree = MaxSegmentTree(scores)

    def process_pick(pick: int) -> np.ndarray:
        """Select ``pick``: recolor, account, and track — both
        strategies share this step.  Returns the newly-grey ids."""
        coloring.set_black(pick)
        selected.append(pick)
        neighbors = csr.neighbors(pick)
        newly_grey = neighbors[codes[neighbors] == white_code].astype(np.int64)
        coloring.set_grey_many(newly_grey)
        # Legacy accounting: one query for the pick plus one grey-update
        # query per newly-grey object.
        index.stats.range_queries += 1 + newly_grey.size
        if tracker is not None:
            tracker.record_black(pick, neighbors)
        return newly_grey

    if strategy == "lazy":
        indptr, indices = csr.indptr, csr.indices
        # The tree leaves are the single source of truth for the lazy
        # upper bounds; hot-loop locals matter because the verify loop
        # runs tens of thousands of scalar iterations.
        argmax = tree.argmax
        update_one = tree.update_one
        stored_at = tree.tree.item
        leaf_base = tree.size
        code_at = codes.item
        start_at = indptr.item
        count_nonzero = np.count_nonzero
        any_white = coloring.any_white
        token = current_token()
        pops = 0
        while any_white():
            while True:
                # Cancellation checkpoint counts *verified pops* — the
                # inner lowering cascade is where the lazy strategy
                # spends its time, so an outer-loop check alone could
                # stall arbitrarily long inside one pick.
                if token is not None:
                    if pops % CHECKPOINT_EVERY == 0:
                        token.checkpoint()
                    pops += 1
                pick = argmax()
                stored = stored_at(leaf_base + pick)
                if stored < 0:
                    raise RuntimeError(
                        "greedy cover ran out of candidates with white objects "
                        "left; the priority structure is inconsistent"
                    )
                code = code_at(pick)
                if code != white_code and not (
                    include_grey_candidates and code == grey_code
                ):
                    # No longer a candidate; retire the stale entry.
                    update_one(pick, -1)
                    continue
                row = indices[start_at(pick) : start_at(pick + 1)]
                # WHITE is code 0, so the white count is the row length
                # minus the non-zero codes — one pass fewer than an
                # explicit comparison on these (often huge) rows.
                current = row.size - count_nonzero(codes[row])
                if code == grey_code and current == 0:
                    # Grey candidates need positive gain; counts only
                    # shrink, so this entry can retire for good.
                    update_one(pick, -1)
                    continue
                if current != stored:
                    update_one(pick, current)
                    continue  # somebody else may hold the max now
                break
            newly_grey = process_pick(pick)
            update_one(pick, -1)
            if not include_grey_candidates and newly_grey.size:
                # r-DisC mode: greys stop being candidates the moment
                # they are greyed — retire them in one batch instead of
                # one stale-entry pop each.
                tree.update_many(
                    newly_grey, np.full(newly_grey.size, -1, dtype=np.int64)
                )
    else:
        pick_buf = np.empty(1, dtype=np.int64)
        token = current_token()
        pops = 0
        while coloring.any_white():
            # One eager step is a whole CSR decrement sweep, so every
            # segment-tree pop gets a checkpoint (still far cheaper
            # than the vector work it gates).
            if token is not None:
                if pops % CHECKPOINT_EVERY == 0:
                    token.checkpoint()
                pops += 1
            pick = tree.argmax()
            if scores[pick] < 0:
                raise RuntimeError(
                    "greedy cover ran out of candidates with white objects "
                    "left; the priority structure is inconsistent"
                )
            was_white = codes[pick] == white_code
            newly_grey = process_pick(pick)

            # Grey update rule: everything that stopped being white this
            # step decrements each adjacent candidate once.  The
            # candidate mask is maintained incrementally (only the
            # recolored objects change) — no per-pick O(n) rebuild.
            sources = (
                np.append(newly_grey, np.int64(pick)) if was_white else newly_grey
            )
            candidate_mask[pick] = False
            if not include_grey_candidates:
                candidate_mask[newly_grey] = False
            touched = csr.decrement(counts, sources, candidate_mask)
            stale = np.concatenate((touched, newly_grey))
            local = codes[stale]
            if include_grey_candidates:
                ok = (local == white_code) | (
                    (local == grey_code) & (counts[stale] > 0)
                )
            else:
                ok = local == white_code
            scores[stale] = np.where(ok, counts[stale], -1)
            scores[pick] = -1
            pick_buf[0] = pick
            stale = np.concatenate((stale, pick_buf))
            tree.update_many(stale, scores[stale])
    return selected


def _seed_counts(
    index: NeighborIndex,
    radius: float,
    coloring: Coloring,
    is_candidate: Callable[[int], bool],
    initial_counts: Optional[np.ndarray],
    *,
    prune: bool,
) -> np.ndarray:
    if initial_counts is not None:
        counts = np.asarray(initial_counts, dtype=np.int64).copy()
        if counts.shape != (index.n,):
            raise ValueError(
                f"initial_counts must have shape ({index.n},), got {counts.shape}"
            )
        return counts
    counts = np.zeros(index.n, dtype=np.int64)
    token = current_token()
    for object_id in range(index.n):
        if token is not None and object_id % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        if not is_candidate(object_id):
            continue
        neighbors = query_neighbors(index, object_id, radius, prune=prune)
        counts[object_id] = sum(1 for n in neighbors if coloring.is_white(n))
    return counts


def _update_counts_grey(
    index, radius, coloring, counts, heap, is_candidate,
    pick, was_white, pick_neighbors, newly_grey,
    *, lazy, prune, bottom_up, stop_at_grey,
) -> None:
    """Decrement candidate counts around every object that stopped being
    white this step (the newly greys, plus the pick itself if it was
    white)."""
    update_radius = radius / 2 if lazy else radius
    changed: List[tuple] = []
    if was_white:
        # The pick's adjacency is already in hand; no extra query needed.
        changed.append((pick, pick_neighbors))
    for grey_id in newly_grey:
        adjacency = query_neighbors(
            index, grey_id, update_radius, prune=prune, bottom_up=bottom_up,
            stop_at_grey=stop_at_grey,
        )
        changed.append((grey_id, adjacency))
    for _, adjacency in changed:
        for other in adjacency:
            if is_candidate(other):
                counts[other] -= 1
                heap.push(other, int(counts[other]))


def _update_counts_white(
    index, radius, coloring, counts, heap, is_candidate, pick,
    *, lazy, prune,
) -> None:
    """Recount the white neighborhoods of candidates near the pick.

    Only objects within ``2r`` of the pick can have lost white neighbors
    (a lost neighbor is within ``r`` of the pick and within ``r`` of the
    candidate); the lazy variant probes only ``3r/2``.
    """
    probe_radius = 1.5 * radius if lazy else 2.0 * radius
    nearby = query_neighbors(index, pick, probe_radius, prune=prune)
    for candidate in nearby:
        if not is_candidate(candidate):
            continue
        neighbors = query_neighbors(index, candidate, radius, prune=prune)
        counts[candidate] = sum(1 for n in neighbors if coloring.is_white(n))
        heap.push(candidate, int(counts[candidate]))


def _variant_name(update_variant: str, lazy: bool, prune: bool) -> str:
    base = {
        ("grey", False): "Grey-Greedy-DisC",
        ("grey", True): "Lazy-Grey-Greedy-DisC",
        ("white", False): "White-Greedy-DisC",
        ("white", True): "Lazy-White-Greedy-DisC",
    }[(update_variant, lazy)]
    return f"{base} (Pruned)" if prune else base


def greedy_disc(
    index: NeighborIndex,
    radius: float,
    *,
    update_variant: str = "grey",
    lazy: bool = False,
    prune: bool = False,
    track_closest_black: bool = False,
) -> DiscResult:
    """Greedy-DisC (Algorithm 1) with the Section 5.1 M-tree variants.

    The default configuration is the paper's reference heuristic
    ``(Grey-)Greedy-DisC``; combine ``update_variant``/``lazy``/``prune``
    for the others.  Output always satisfies both DisC conditions.
    """
    radius = validate_radius(radius)
    before = index.stats.snapshot()
    initial_counts = index.neighborhood_sizes(radius)
    coloring = attach_fresh_coloring(index)
    tracker = (
        ClosestBlackTracker(index, exact=not prune) if track_closest_black else None
    )
    selected: List[int] = []
    try:
        greedy_cover(
            index,
            radius,
            coloring,
            include_grey_candidates=False,
            update_variant=update_variant,
            lazy=lazy,
            prune=prune,
            initial_counts=initial_counts,
            tracker=tracker,
            selected=selected,
        )
    finally:
        index.detach_coloring()
    return DiscResult(
        selected=selected,
        radius=radius,
        algorithm=_variant_name(update_variant, lazy, prune),
        stats=consume_stats(index, before),
        coloring=coloring,
        closest_black=tracker.distances if tracker is not None else None,
        meta={
            "update_variant": update_variant,
            "lazy": lazy,
            "prune": prune,
            "closest_black_exact": tracker.exact if tracker else None,
        },
    )


def greedy_c(
    index: NeighborIndex,
    radius: float,
    *,
    track_closest_black: bool = False,
) -> DiscResult:
    """Greedy-C: covering-only greedy (grey objects stay candidates).

    The paper notes the pruning rule cannot be used here — grey objects
    and nodes must remain reachable so their white-neighborhood counts
    stay current — so all queries run unpruned.
    """
    radius = validate_radius(radius)
    before = index.stats.snapshot()
    initial_counts = index.neighborhood_sizes(radius)
    coloring = attach_fresh_coloring(index)
    tracker = ClosestBlackTracker(index) if track_closest_black else None
    selected: List[int] = []
    try:
        greedy_cover(
            index,
            radius,
            coloring,
            include_grey_candidates=True,
            update_variant="grey",
            prune=False,
            initial_counts=initial_counts,
            tracker=tracker,
            selected=selected,
        )
    finally:
        index.detach_coloring()
    return DiscResult(
        selected=selected,
        radius=radius,
        algorithm="Greedy-C",
        stats=consume_stats(index, before),
        coloring=coloring,
        closest_black=tracker.distances if tracker is not None else None,
        meta={"covering_only": True},
    )


def fast_c(
    index: NeighborIndex,
    radius: float,
    *,
    track_closest_black: bool = False,
) -> DiscResult:
    """Fast-C: Greedy-C accelerated via the pruning rule's grey flags.

    Greedy-C itself cannot skip grey subtrees (grey candidates' counts
    must stay current), so Fast-C exploits the grey bookkeeping
    differently: range queries traverse the tree *bottom-up* and stop
    climbing at the first grey internal node.  Neighbors in distant leaf
    subtrees may be missed, producing slightly larger but still covering
    solutions with fewer node accesses; the effect scales with tree
    depth (the paper reports up to ~30% on its 10000-object trees).

    Requires an index supporting the M-tree query options; on simple
    indexes it degrades to plain Greedy-C (no grey flags to exploit).
    """
    radius = validate_radius(radius)
    before = index.stats.snapshot()
    initial_counts = index.neighborhood_sizes(radius)
    coloring = attach_fresh_coloring(index)
    tracker = ClosestBlackTracker(index) if track_closest_black else None
    selected: List[int] = []
    use_tree_shortcuts = index.supports_pruning
    try:
        greedy_cover(
            index,
            radius,
            coloring,
            include_grey_candidates=True,
            update_variant="grey",
            prune=False,
            bottom_up=use_tree_shortcuts,
            stop_at_grey=use_tree_shortcuts,
            initial_counts=initial_counts,
            tracker=tracker,
            selected=selected,
        )
    finally:
        index.detach_coloring()
    return DiscResult(
        selected=selected,
        radius=radius,
        algorithm="Fast-C",
        stats=consume_stats(index, before),
        coloring=coloring,
        closest_black=tracker.distances if tracker is not None else None,
        meta={"covering_only": True, "bottom_up": use_tree_shortcuts},
    )

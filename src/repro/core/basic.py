"""Basic-DisC (Section 2.3): the baseline DisC heuristic.

Scan the objects in index order; every still-white object is selected
(colored black) and its whole neighborhood is colored grey.  The output
is a maximal independent set of ``G_{P,r}`` and therefore — by the
paper's Lemma 1 — an r-DisC diverse subset.

On an M-tree index the scan follows the left-to-right leaf chain, so
consecutive selections are spatially local and their range queries cheap;
``prune=True`` additionally skips fully-grey subtrees during the queries
(the paper's ``Basic-DisC (Pruned)``), whose progress can be pictured as
coloring the tree grey in post-order.
"""

from __future__ import annotations

from typing import Optional

from repro.core._common import (
    ClosestBlackTracker,
    attach_fresh_coloring,
    consume_stats,
    csr_fast_path,
    scan_cover,
)
from repro.core.result import DiscResult
from repro.index.base import NeighborIndex
from repro.validation import validate_radius

__all__ = ["basic_disc"]


def basic_disc(
    index: NeighborIndex,
    radius: float,
    *,
    prune: bool = False,
    track_closest_black: bool = False,
) -> DiscResult:
    """Compute an r-DisC diverse subset with the Basic-DisC heuristic.

    Parameters
    ----------
    index:
        Any :class:`~repro.index.base.NeighborIndex`; determines the
        "arbitrary" selection order (leaf order on an M-tree).
    radius:
        The DisC radius r.
    prune:
        Use the grey-subtree pruning rule during range queries
        (effective only on indexes that support it).
    track_closest_black:
        Maintain the per-object closest-black distances needed by
        zooming (Section 5.2).  With ``prune`` these are upper bounds;
        zoom algorithms re-run the exact post-processing pass.
    """
    radius = validate_radius(radius)
    before = index.stats.snapshot()
    coloring = attach_fresh_coloring(index)
    tracker: Optional[ClosestBlackTracker] = (
        ClosestBlackTracker(index, exact=not prune) if track_closest_black else None
    )
    selected = []
    # The scan covers the whole dataset, so materialising the full
    # adjacency is always amortised (unlike zooming, which only builds
    # on demand).
    csr = csr_fast_path(index, radius, coloring, prune=prune)
    try:
        scan_cover(
            index, radius, coloring,
            prune=prune, tracker=tracker, selected=selected, csr=csr,
        )
    finally:
        index.detach_coloring()
    name = "Basic-DisC (Pruned)" if prune else "Basic-DisC"
    return DiscResult(
        selected=selected,
        radius=radius,
        algorithm=name,
        stats=consume_stats(index, before),
        coloring=coloring,
        closest_black=tracker.distances if tracker is not None else None,
        meta={"prune": prune, "closest_black_exact": tracker.exact if tracker else None},
    )

"""Adaptive diversification: zooming-in and zooming-out (Sections 3, 5.2).

Given an r-DisC diverse subset ``S_r``, the user may request a different
radius r′.  Rather than recompute from scratch, the zooming algorithms
adapt the existing solution so the new result stays intuitively close to
what the user has already seen (small Jaccard distance — Figures 13/16):

* **zooming-in** (r′ < r): all of ``S_r`` is kept (Lemma 5(i):
  ``S_r ⊆ S_{r'}``); objects that fall out of coverage under the smaller
  radius are re-covered by new selections, chosen arbitrarily
  (``Zoom-In``) or greedily (``Greedy-Zoom-In``, Algorithm 2).
* **zooming-out** (r′ > r): no subset of ``S_r`` need be r′-DisC
  (Observation 4), so Algorithm 3 runs two passes: first re-select from
  the old blacks (colored *red*), then cover any uncovered areas.  The
  greedy first pass orders reds by (a) most red neighbors, (b) fewest
  red neighbors, or (c) most white neighbors.

Local zooming restricts either operation to the neighborhood of one
object of interest (Figure 1(d) / Figure 2).

The M-tree supports zooming-in through per-object *closest-black
distances* (the Section 5.2 leaf extension): a grey object stays covered
at r′ iff its closest black lies within r′.  When the producing run used
pruned queries those distances are inexact, and the paper's
post-processing pass (re-running the blacks' range queries) restores
them — implemented in :func:`recompute_closest_black`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cancellation import CHECKPOINT_EVERY, current_token
from repro.core._common import (
    ClosestBlackTracker,
    LazyMaxHeap,
    consume_stats,
    csr_fast_path,
    query_neighbors,
    scan_cover,
)
from repro.core.coloring import Color, Coloring
from repro.core.greedy import greedy_cover
from repro.core.result import DiscResult
from repro.graph.priority import NEG_INF, MaxSegmentTree
from repro.index.base import NeighborIndex
from repro.validation import validate_radius

__all__ = [
    "zoom_in",
    "zoom_out",
    "local_zoom",
    "recompute_closest_black",
]


def recompute_closest_black(
    index: NeighborIndex, selected: List[int], radius: float
) -> ClosestBlackTracker:
    """Exact closest-black distances via one range query per black.

    Coverage at ``radius`` guarantees every object lies within ``radius``
    of some black, so probing each black's neighborhood suffices.  This
    is the post-processing step Section 5.2 requires after pruned
    construction.
    """
    tracker = ClosestBlackTracker(index, exact=True)
    neighborhoods = index.range_query_batch(selected, radius)
    for black, neighbors in zip(selected, neighborhoods):
        tracker.record_black(black, neighbors)
    return tracker


def _tracker_from_previous(
    index: NeighborIndex, previous: DiscResult
) -> ClosestBlackTracker:
    """Reuse the previous run's closest-black distances when they are
    exact; otherwise re-derive them (charging the index counters)."""
    if previous.closest_black is not None and previous.meta.get(
        "closest_black_exact", False
    ):
        tracker = ClosestBlackTracker(index, exact=True)
        tracker.distances = previous.closest_black.copy()
        return tracker
    return recompute_closest_black(index, previous.selected, previous.radius)


def zoom_in(
    index: NeighborIndex,
    previous: DiscResult,
    new_radius: float,
    *,
    greedy: bool = False,
    prune: bool = False,
) -> DiscResult:
    """Adapt ``previous`` to a smaller radius (Zoom-In / Greedy-Zoom-In).

    The previous selections are all retained; the algorithms only add
    objects for the areas the smaller radius uncovers.  The result's
    ``closest_black`` is always exact, ready for further zooming.
    """
    new_radius = validate_radius(new_radius, name="new_radius")
    if new_radius >= previous.radius:
        raise ValueError(
            f"zoom-in needs a smaller radius: {new_radius} >= {previous.radius}"
        )
    before = index.stats.snapshot()
    tracker = _tracker_from_previous(index, previous)

    # Zooming rule (Section 5.2): blacks stay black; greys stay grey only
    # while a black remains within the new radius.
    coloring = Coloring(index.n)
    previous_set = previous.selected_set()
    for black in previous.selected:
        coloring.set_black(black)
    token = current_token()
    for object_id in range(index.n):
        if token is not None and object_id % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        if object_id in previous_set:
            continue
        if tracker.covered_at(object_id, new_radius):
            coloring.set_grey(object_id)
    index.attach_coloring(coloring)

    added: List[int] = []
    try:
        if greedy:
            greedy_cover(
                index,
                new_radius,
                coloring,
                include_grey_candidates=False,
                update_variant="grey",
                prune=prune,
                tracker=tracker,
                selected=added,
            )
        else:
            # Zooming typically re-covers a handful of objects, so a
            # full adjacency build at the new radius would dwarf the
            # per-query cost — consume a cached CSR, never build one.
            csr = csr_fast_path(
                index, new_radius, coloring, prune=prune, build=False
            )
            scan_cover(
                index, new_radius, coloring,
                prune=prune, tracker=tracker, selected=added, csr=csr,
            )
    finally:
        index.detach_coloring()

    return DiscResult(
        selected=list(previous.selected) + added,
        radius=new_radius,
        algorithm="Greedy-Zoom-In" if greedy else "Zoom-In",
        stats=consume_stats(index, before),
        coloring=coloring,
        closest_black=tracker.distances,
        meta={
            "previous_radius": previous.radius,
            "added": list(added),
            "closest_black_exact": True,
            "prune": prune,
        },
    )


_ZOOM_OUT_VARIANTS = ("a", "b", "c")


def zoom_out(
    index: NeighborIndex,
    previous: DiscResult,
    new_radius: float,
    *,
    greedy_variant: Optional[str] = None,
    prune: bool = False,
) -> DiscResult:
    """Adapt ``previous`` to a larger radius (Zoom-Out / Greedy-Zoom-Out).

    ``greedy_variant`` selects the first-pass ordering of Algorithm 3:
    ``None`` processes reds in index order (plain ``Zoom-Out``);
    ``"a"``/``"b"``/``"c"`` use most-red-neighbors, fewest-red-neighbors,
    most-white-neighbors respectively.  Greedy variants also run the
    second (coverage) pass greedily; the arbitrary variant scans.
    """
    new_radius = validate_radius(new_radius, name="new_radius")
    if new_radius <= previous.radius:
        raise ValueError(
            f"zoom-out needs a larger radius: {new_radius} <= {previous.radius}"
        )
    if greedy_variant is not None and greedy_variant not in _ZOOM_OUT_VARIANTS:
        raise ValueError(
            f"greedy_variant must be one of {_ZOOM_OUT_VARIANTS} or None, "
            f"got {greedy_variant!r}"
        )
    before = index.stats.snapshot()

    # Pass 0: previous blacks become red, everything else white.
    coloring = Coloring(index.n)
    for black in previous.selected:
        coloring.set_red(black)
    index.attach_coloring(coloring)
    tracker = ClosestBlackTracker(index, exact=True)

    selected: List[int] = []
    try:
        if greedy_variant is None:
            self_order = [i for i in index.ids() if coloring.is_red(i)]
            for red in self_order:
                if not coloring.is_red(red):
                    continue
                _select_zoom_out(index, coloring, tracker, red, new_radius, selected, prune)
        else:
            # The red pass touches every red's full neighborhood; with a
            # cached CSR at the new radius it runs as array primitives
            # (building one here would dwarf the pass, so consume only).
            csr = csr_fast_path(index, new_radius, coloring, prune=prune, build=False)
            if csr is not None:
                _greedy_red_pass_csr(
                    index, csr, coloring, tracker, selected, greedy_variant
                )
            else:
                _greedy_red_pass(
                    index, coloring, tracker, new_radius, selected,
                    greedy_variant, prune,
                )

        # Pass 2: cover areas the removed reds left uncovered.
        if greedy_variant is None:
            for object_id in index.ids():
                if not coloring.is_white(object_id):
                    continue
                _select_zoom_out(
                    index, coloring, tracker, object_id, new_radius, selected, prune
                )
        else:
            greedy_cover(
                index,
                new_radius,
                coloring,
                include_grey_candidates=False,
                update_variant="grey",
                prune=prune,
                tracker=tracker,
                selected=selected,
            )
    finally:
        index.detach_coloring()

    name = (
        "Zoom-Out"
        if greedy_variant is None
        else f"Greedy-Zoom-Out ({greedy_variant})"
    )
    return DiscResult(
        selected=selected,
        radius=new_radius,
        algorithm=name,
        stats=consume_stats(index, before),
        coloring=coloring,
        closest_black=tracker.distances,
        meta={
            "previous_radius": previous.radius,
            "kept": sorted(set(selected) & previous.selected_set()),
            "closest_black_exact": True,
            "greedy_variant": greedy_variant,
            "prune": prune,
        },
    )


def _select_zoom_out(
    index: NeighborIndex,
    coloring: Coloring,
    tracker: ClosestBlackTracker,
    object_id: int,
    radius: float,
    selected: List[int],
    prune: bool,
) -> None:
    """Select ``object_id`` in a zoom-out pass: black it and grey its
    neighborhood (reds inside become covered and leave the solution)."""
    coloring.set_black(object_id)
    selected.append(object_id)
    neighbors = query_neighbors(index, object_id, radius, prune=prune)
    for neighbor in neighbors:
        if coloring.is_white(neighbor) or coloring.is_red(neighbor):
            coloring.set_grey(neighbor)
    tracker.record_black(object_id, neighbors)


def _greedy_red_pass(
    index: NeighborIndex,
    coloring: Coloring,
    tracker: ClosestBlackTracker,
    radius: float,
    selected: List[int],
    variant: str,
    prune: bool,
) -> None:
    """First pass of Greedy-Zoom-Out: process reds in variant order.

    Each red's neighborhood is probed once up front; counts are then
    maintained in memory through a reverse-adjacency map, so the pass
    costs one range query per red plus the selection queries.
    """
    reds = [i for i in range(index.n) if coloring.is_red(i)]
    adjacency: Dict[int, List[int]] = {}
    red_counts = np.zeros(index.n, dtype=np.int64)
    white_counts = np.zeros(index.n, dtype=np.int64)
    touching: Dict[int, List[int]] = {}
    if prune:
        neighborhoods = [
            query_neighbors(index, red, radius, prune=True) for red in reds
        ]
    else:
        # One batched probe for the whole red set (vectorised on the
        # simple indexes, per-query fidelity on the M-tree).
        neighborhoods = index.range_query_batch(reds, radius)
    codes = coloring.codes_view()
    red_code, white_code = int(Color.RED), int(Color.WHITE)
    for red, neighbors in zip(reds, neighborhoods):
        neighbor_arr = np.asarray(neighbors, dtype=np.int64)
        adjacency[red] = neighbor_arr
        local = codes[neighbor_arr]
        red_counts[red] = int(np.count_nonzero(local == red_code))
        white_counts[red] = int(np.count_nonzero(local == white_code))
        for neighbor in neighbor_arr.tolist():
            touching.setdefault(neighbor, []).append(red)

    if variant == "a":
        priority = lambda i: int(red_counts[i])
    elif variant == "b":
        priority = lambda i: -int(red_counts[i])
    else:  # "c"
        priority = lambda i: int(white_counts[i])

    heap = LazyMaxHeap()
    for red in reds:
        heap.push(red, priority(red))

    def on_recolor(changed_id: int, was_red: bool) -> None:
        """A neighbor stopped being red/white: refresh affected reds."""
        for red in touching.get(changed_id, ()):
            if not coloring.is_red(red):
                continue
            if was_red:
                red_counts[red] -= 1
            else:
                white_counts[red] -= 1
            heap.push(red, priority(red))

    token = current_token()
    iterations = 0
    while coloring.any_red():
        iterations += 1
        if token is not None and iterations % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        pick = heap.pop_valid(priority, coloring.is_red)
        if pick is None:
            raise RuntimeError("red pass lost track of remaining red objects")
        coloring.set_black(pick)
        selected.append(pick)
        neighbors = adjacency[pick]
        for neighbor in neighbors:
            if coloring.is_red(neighbor):
                coloring.set_grey(neighbor)
                on_recolor(neighbor, was_red=True)
            elif coloring.is_white(neighbor):
                coloring.set_grey(neighbor)
                on_recolor(neighbor, was_red=False)
        tracker.record_black(pick, neighbors)
        # The pick itself stopped being red.
        on_recolor(pick, was_red=True)


def _greedy_red_pass_csr(
    index: NeighborIndex,
    csr,
    coloring: Coloring,
    tracker: ClosestBlackTracker,
    selected: List[int],
    variant: str,
) -> None:
    """Vectorised :func:`_greedy_red_pass` over a cached CSR adjacency.

    Selection order is identical to the heap-driven pass: the next pick
    is the red object with the maximum variant priority, ties broken by
    the smaller id (the :class:`~repro.graph.priority.MaxSegmentTree`
    argmax mirrors the heap's ordering).  Count maintenance follows the
    same rule — every object that stops being red/white decrements the
    red/white counters of its still-red neighbors — with the one
    irrelevant divergence that counters of objects greyed *within the
    same step* are not decremented: the legacy pass may still touch
    them mid-loop, but their priorities are never read again (the heap
    skips non-reds), so the selections cannot differ.
    """
    codes = coloring.codes_view()
    red_code, white_code = int(Color.RED), int(Color.WHITE)
    red_mask = codes == red_code
    reds = np.flatnonzero(red_mask)
    # Legacy accounting: one up-front probe per red object.
    index.stats.range_queries += reds.size
    red_counts = csr.neighbor_counts(red_mask).astype(np.int64)
    white_counts = csr.neighbor_counts(codes == white_code).astype(np.int64)

    if variant == "a":
        priority = red_counts
        sign = 1
    elif variant == "b":
        priority = -red_counts
        sign = -1
    else:  # "c"
        priority = white_counts
        sign = 1

    scores = np.where(red_mask, priority, NEG_INF)
    tree = MaxSegmentTree(scores)

    def refresh_and_push(stale: np.ndarray) -> None:
        if variant == "c":
            live = white_counts[stale]
        else:
            live = sign * red_counts[stale]
        scores[stale] = np.where(red_mask[stale], live, NEG_INF)
        tree.update_many(stale, scores[stale])

    pick_buf = np.empty(1, dtype=np.int64)
    token = current_token()
    iterations = 0
    while coloring.any_red():
        iterations += 1
        if token is not None and iterations % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        pick = tree.argmax()
        if scores[pick] == NEG_INF:
            raise RuntimeError("red pass lost track of remaining red objects")
        coloring.set_black(pick)
        selected.append(pick)
        neighbors = csr.neighbors(pick)
        local = codes[neighbors]
        greyed_reds = neighbors[local == red_code].astype(np.int64)
        greyed_whites = neighbors[local == white_code].astype(np.int64)
        coloring.set_grey_many(greyed_reds)
        coloring.set_grey_many(greyed_whites)
        tracker.record_black(pick, neighbors)

        # The pick and the greyed reds left the red pool.
        red_mask[pick] = False
        red_mask[greyed_reds] = False
        touched_r = csr.decrement(
            red_counts, np.append(greyed_reds, np.int64(pick)), red_mask
        )
        touched_w = csr.decrement(white_counts, greyed_whites, red_mask)
        pick_buf[0] = pick
        # greyed_reds must be re-pushed too: they may not appear in the
        # touched sets (the mask already excludes them) but their old
        # scores would otherwise linger in the tree as phantom maxima.
        refresh_and_push(
            np.concatenate((touched_r, touched_w, greyed_reds, pick_buf))
        )


def local_zoom(
    index: NeighborIndex,
    previous: DiscResult,
    center_id: int,
    new_radius: float,
    *,
    greedy: bool = True,
) -> DiscResult:
    """Zoom in or out *locally* around one object of interest.

    Per Section 5.2, the zooming algorithm receives only the objects in
    ``N_r(center)``: the area around ``center`` is re-diversified at
    ``new_radius`` while the rest of the previous solution is kept
    verbatim.  The direction (in/out) follows from comparing
    ``new_radius`` with the previous radius.
    """
    from repro.index.bruteforce import BruteForceIndex

    if center_id not in previous.selected_set():
        raise ValueError(
            f"local zoom centers on a selected object; {center_id} is not in "
            "the previous solution"
        )
    before = index.stats.snapshot()
    area = query_neighbors(index, center_id, previous.radius)
    area_ids = sorted(set(area) | {center_id})
    position = {global_id: local_id for local_id, global_id in enumerate(area_ids)}

    sub_index = BruteForceIndex(index.points[area_ids], index.metric)
    local_blacks = [position[b] for b in previous.selected if b in position]
    local_tracker = recompute_closest_black(sub_index, local_blacks, previous.radius)
    local_previous = DiscResult(
        selected=local_blacks,
        radius=previous.radius,
        algorithm=previous.algorithm,
        closest_black=local_tracker.distances,
        meta={"closest_black_exact": True},
    )
    if new_radius < previous.radius:
        local_result = zoom_in(sub_index, local_previous, new_radius, greedy=greedy)
    else:
        local_result = zoom_out(
            sub_index,
            local_previous,
            new_radius,
            greedy_variant="a" if greedy else None,
        )

    outside = [b for b in previous.selected if b not in position]
    inside = [area_ids[local_id] for local_id in local_result.selected]
    stats = consume_stats(index, before)
    stats.range_queries += local_result.stats.range_queries
    stats.distance_computations += local_result.stats.distance_computations

    return DiscResult(
        selected=outside + inside,
        radius=previous.radius,
        algorithm=f"Local-{local_result.algorithm}",
        stats=stats,
        meta={
            "center": center_id,
            "local_radius": new_radius,
            "area_size": len(area_ids),
            "inside": inside,
            "outside": outside,
        },
    )

"""Multiple radii per object (paper Section 8, future work #2).

The paper's second route for integrating relevance: "allowing multiple
radii per object, so that relevant objects get a smaller radius than the
radius of less relevant ones" — relevant regions then receive more
representatives.

Formalisation used here (a standard generalisation of independent
domination to heterogeneous balls):

* **coverage** — every object ``p_i`` must have a selected object within
  ``r_i`` (its *own* radius: a relevant object tolerates only nearby
  representatives);
* **dissimilarity** — for any two selected ``p_i, p_j``:
  ``dist(p_i, p_j) > min(r_i, r_j)`` (neither lies inside the other's
  tolerance, mirroring how the uniform-radius condition arises from
  mutual coverage).

With all radii equal this reduces exactly to Definition 1.  A greedy
heuristic selects, among the still-uncovered objects, the one covering
the most uncovered objects.  The relevance → radius mapping helper
``radii_from_relevance`` implements the paper's "more relevant, smaller
radius" monotone assignment.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cancellation import CHECKPOINT_EVERY, current_token
from repro.core._common import LazyMaxHeap, consume_stats
from repro.core.coloring import Coloring
from repro.core.result import DiscResult
from repro.index.base import NeighborIndex

__all__ = ["multiradius_disc", "radii_from_relevance", "verify_multiradius"]


def radii_from_relevance(
    relevance: np.ndarray, r_min: float, r_max: float
) -> np.ndarray:
    """Monotone map: highest relevance -> ``r_min``, lowest -> ``r_max``.

    Linear interpolation over min-max-normalised relevance; constant
    relevance maps everything to the midpoint.
    """
    relevance = np.asarray(relevance, dtype=float)
    if r_min <= 0 or r_max <= 0:
        raise ValueError("radii must be positive")
    if r_min > r_max:
        raise ValueError(f"r_min must not exceed r_max ({r_min} > {r_max})")
    span = relevance.max() - relevance.min()
    if span == 0:
        return np.full(relevance.shape, (r_min + r_max) / 2.0)
    normalised = (relevance - relevance.min()) / span
    return r_max - normalised * (r_max - r_min)


def _covers(index: NeighborIndex, selected_id: int, radii: np.ndarray) -> List[int]:
    """Objects whose own ball contains ``selected_id``.

    Object i is covered by s iff dist(i, s) <= r_i, so we query at the
    maximum radius and filter per object.
    """
    candidates = index.range_query(selected_id, float(radii.max()), include_self=True)
    ids = np.asarray(candidates, dtype=int)
    d = index.metric.to_point(index.points[ids], index.points[selected_id])
    index.stats.distance_computations += len(ids)
    return [int(i) for i, dist in zip(ids, d) if dist <= radii[i]]


def multiradius_disc(
    index: NeighborIndex,
    radii: np.ndarray,
) -> DiscResult:
    """Greedy heterogeneous-radius DisC diversification.

    Returns a subset satisfying the multi-radius coverage and
    dissimilarity conditions in the module docstring.
    """
    radii = np.asarray(radii, dtype=float)
    if radii.shape != (index.n,):
        raise ValueError(f"radii must have shape ({index.n},), got {radii.shape}")
    if np.any(radii <= 0):
        raise ValueError("all radii must be positive")

    before = index.stats.snapshot()
    coloring = Coloring(index.n)

    # Initial gain: how many objects each candidate would cover.
    cover_lists = {i: _covers(index, i, radii) for i in range(index.n)}
    counts = np.array([len(cover_lists[i]) for i in range(index.n)], dtype=np.int64)

    heap = LazyMaxHeap()
    token = current_token()
    for object_id in range(index.n):
        if token is not None and object_id % CHECKPOINT_EVERY == 0:
            token.checkpoint()
        heap.push(object_id, int(counts[object_id]))

    selected: List[int] = []
    pops = 0
    while coloring.any_white():
        if token is not None:
            if pops % CHECKPOINT_EVERY == 0:
                token.checkpoint()
            pops += 1
        pick = heap.pop_valid(lambda i: int(counts[i]), coloring.is_white)
        if pick is None:
            raise RuntimeError("multi-radius greedy lost track of white objects")
        coloring.set_black(pick)
        selected.append(pick)
        # Grey everything the pick covers.  This also enforces the
        # heterogeneous dissimilarity condition automatically: a white j
        # with dist(j, pick) <= min(r_j, r_pick) has dist <= r_j, so it
        # is covered here and can never be selected later.
        newly_grey = [
            other for other in cover_lists[pick] if coloring.is_white(other)
        ]
        for grey_id in newly_grey:
            coloring.set_grey(grey_id)
        # counts[c] counts the whites c would cover; each object that
        # left white (the pick itself plus the newly greys) decrements
        # every still-white candidate covering it, i.e. every object
        # within the departed object's *own* radius.
        for grey_id in [pick] + newly_grey:
            coverers = index.range_query(
                grey_id, float(radii[grey_id]), include_self=True
            )
            for coverer in coverers:
                if coloring.is_white(coverer):
                    counts[coverer] -= 1
                    heap.push(coverer, int(counts[coverer]))

    return DiscResult(
        selected=selected,
        radius=float(radii.mean()),
        algorithm="MultiRadius-DisC",
        stats=consume_stats(index, before),
        coloring=coloring,
        # Declared legacy by design: the CSR engine materialises one
        # fixed-radius adjacency, while this heuristic's coverage
        # relation is per-object ("who covers whom" depends on each
        # object's own radius), so it stays on per-query range queries.
        # The parity suite asserts this declaration so the extension
        # cannot silently drift onto a wrong-radius fast path.
        meta={"radii": radii, "multi_radius": True, "engine": "legacy"},
    )


def verify_multiradius(points, metric, selected, radii) -> dict:
    """Check the heterogeneous coverage and dissimilarity conditions.

    Returns ``{"uncovered": [...], "too_close": [...]}`` (empty = valid).
    """
    from repro.distance import get_metric

    metric = get_metric(metric)
    points = np.asarray(points)
    radii = np.asarray(radii, dtype=float)
    ids = list(selected)

    closest = np.full(points.shape[0], np.inf)
    for sel in ids:
        np.minimum(closest, metric.to_point(points, points[sel]), out=closest)
    uncovered = [int(i) for i in np.nonzero(closest > radii)[0]]

    too_close = []
    token = current_token()
    pairs = 0
    for a in range(len(ids)):
        for b in range(a + 1, len(ids)):
            # O(|S|^2) pair scan: checkpoint inside the inner loop so a
            # deadline can interrupt large verifications mid-row.
            if token is not None:
                if pairs % CHECKPOINT_EVERY == 0:
                    token.checkpoint()
                pairs += 1
            i, j = ids[a], ids[b]
            if metric.distance(points[i], points[j]) <= min(radii[i], radii[j]):
                too_close.append((i, j))
    return {"uncovered": uncovered, "too_close": too_close}

"""Online / streaming DisC diversity (paper Section 8, future work #3).

The paper closes with "designing algorithms for the online version of
the problem".  This module maintains an r-DisC diverse subset over a
*stream* of arriving objects:

* a new object becomes **black** (selected) when no current black lies
  within ``r`` — otherwise it is **grey** (covered on arrival);
* both Definition 1 conditions therefore hold after *every* arrival,
  because the black set is always a maximal independent set of the
  neighborhood graph over the objects seen so far;
* selections are never retracted by *arrivals* (the irrevocable-choice
  model for online independent domination); a ``rebuild`` escape hatch
  re-runs Greedy-DisC over the accumulated objects when the caller wants
  to consolidate;
* **expiry** is supported for the continuous-data setting the paper
  cites ([12] Drosou & Pitoura, EDBT 2012): :meth:`remove` deletes an
  object and — when a selected object disappears — repairs coverage by
  re-running the arrival rule over the objects left uncovered, in their
  original arrival order, so both DisC conditions hold after every
  removal too.

Neighbor search scans the black set vectorised; the black set is
typically tiny compared to the stream, so arrivals are O(|S|).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cancellation import CHECKPOINT_EVERY, current_token
from repro.core.result import DiscResult
from repro.distance import get_metric
from repro.validation import validate_radius

__all__ = ["StreamingDisC"]


class StreamingDisC:
    """Incrementally maintained r-DisC diverse subset.

    Example
    -------
    >>> stream = StreamingDisC(radius=0.1, metric="euclidean")
    >>> for point in data:                      # doctest: +SKIP
    ...     stream.add(point)
    >>> stream.selected_ids                     # doctest: +SKIP
    """

    def __init__(self, radius: float, metric="euclidean"):
        # Shared validation: rejects NaN/±inf too — a NaN radius would
        # make every arrival "diverse" (all distance comparisons False).
        self.radius = validate_radius(radius)
        self.metric = get_metric(metric)
        self._points: List[np.ndarray] = []
        self._alive: List[bool] = []
        self._black_ids: List[int] = []
        self._black_matrix: Optional[np.ndarray] = None
        self._closest_black: List[float] = []

    # ------------------------------------------------------------------
    @property
    def n_seen(self) -> int:
        """Objects consumed from the stream so far (including removed)."""
        return len(self._points)

    @property
    def n_alive(self) -> int:
        """Objects currently in the window (not removed)."""
        return sum(self._alive)

    def alive_ids(self) -> List[int]:
        """Arrival indices of the objects currently alive."""
        return [i for i, alive in enumerate(self._alive) if alive]

    @property
    def selected_ids(self) -> List[int]:
        """Arrival indices of the selected (black) objects."""
        return list(self._black_ids)

    @property
    def size(self) -> int:
        return len(self._black_ids)

    def selected_points(self) -> np.ndarray:
        if not self._black_ids:
            return np.empty((0, 0))
        return np.stack([self._points[i] for i in self._black_ids])

    # ------------------------------------------------------------------
    def add(self, point) -> bool:
        """Consume one object; return True when it was selected.

        O(|S|) distance evaluations per arrival (vectorised against the
        black matrix).
        """
        point = np.asarray(point)
        object_id = len(self._points)
        self._points.append(point)
        self._alive.append(True)

        distance = self._distance_to_blacks(point)
        if distance <= self.radius:
            self._closest_black.append(distance)
            return False
        self._select(object_id)
        self._closest_black.append(0.0)
        return True

    def _distance_to_blacks(self, point: np.ndarray) -> float:
        if self._black_matrix is None or self._black_matrix.shape[0] == 0:
            return np.inf
        return float(self.metric.to_point(self._black_matrix, point).min())

    def _select(self, object_id: int) -> None:
        self._black_ids.append(object_id)
        point = self._points[object_id]
        row = np.asarray(point, dtype=float).reshape(1, -1)
        if self._black_matrix is None or self._black_matrix.shape[0] == 0:
            self._black_matrix = row
        else:
            self._black_matrix = np.vstack([self._black_matrix, row])

    def remove(self, object_id: int) -> bool:
        """Expire one object; return True when a repair was needed.

        Removing a covered (grey) object never disturbs the solution.
        Removing a *selected* object may leave parts of the window
        uncovered; the repair re-applies the arrival rule to all alive
        objects in their original order, so the black set remains a
        maximal independent set over the window.
        """
        if not 0 <= object_id < len(self._points):
            raise IndexError(f"object id {object_id} out of range")
        if not self._alive[object_id]:
            raise ValueError(f"object {object_id} was already removed")
        self._alive[object_id] = False
        if object_id not in self._black_ids:
            return False

        # Rebuild the black set: survivors stay selected, then uncovered
        # alive objects re-enter in arrival order.
        self._black_ids = [b for b in self._black_ids if b != object_id]
        self._black_matrix = (
            np.stack([self._points[b] for b in self._black_ids]).astype(float)
            if self._black_ids
            else None
        )
        token = current_token()
        for i, candidate in enumerate(self.alive_ids()):
            if token is not None and i % CHECKPOINT_EVERY == 0:
                token.checkpoint()
            if self._distance_to_blacks(self._points[candidate]) > self.radius:
                self._select(candidate)
        # Refresh closest-black distances for the snapshot API.
        for i, alive in enumerate(self._alive):
            if token is not None and i % CHECKPOINT_EVERY == 0:
                token.checkpoint()
            if alive:
                self._closest_black[i] = self._distance_to_blacks(self._points[i])
        return True

    def extend(self, points) -> int:
        """Consume many objects; return how many were selected."""
        token = current_token()
        count = 0
        for i, point in enumerate(np.asarray(points)):
            if token is not None and i % CHECKPOINT_EVERY == 0:
                token.checkpoint()
            if self.add(point):
                count += 1
        return count

    # ------------------------------------------------------------------
    def result(self) -> DiscResult:
        """Snapshot as a :class:`DiscResult` (coloring omitted)."""
        return DiscResult(
            selected=list(self._black_ids),
            radius=self.radius,
            algorithm="Streaming-DisC",
            closest_black=np.asarray(self._closest_black),
            # Arrivals never touch an index: each one is a single
            # vectorised distance pass over the black matrix, already
            # free of per-neighbor Python loops (declared engine).
            meta={"n_seen": self.n_seen, "online": True,
                  "closest_black_exact": True,
                  "engine": "vectorized-stream"},
        )

    def rebuild(self) -> DiscResult:
        """Consolidate: run Greedy-DisC offline over everything seen.

        The online set can be up to B times the offline greedy's size in
        adversarial orders; rebuilding trades the incremental guarantee
        for a smaller subset.
        """
        from repro.core.greedy import greedy_disc
        from repro.index.bruteforce import BruteForceIndex

        alive = self.alive_ids()
        if not alive:
            raise RuntimeError("no objects consumed yet")
        index = BruteForceIndex(
            np.stack([self._points[i] for i in alive]),
            self.metric,
            cache_radius=self.radius,
        )
        result = greedy_disc(index, self.radius)
        result.selected = [alive[local] for local in result.selected]
        result.meta["arrival_ids"] = True
        # Rebuilds ride the CSR fast path whenever the oracle index
        # materialised the adjacency (always, with cache_radius set).
        result.meta["engine"] = (
            "csr"
            if index.csr_neighborhood(self.radius, build=False) is not None
            else "legacy"
        )
        result.coloring = None  # local ids would be misleading
        return result

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"StreamingDisC(r={self.radius}, seen={self.n_seen}, "
            f"selected={self.size})"
        )

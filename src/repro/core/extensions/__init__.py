"""Section 8 extensions: the paper's future-work directions, implemented.

* :func:`weighted_disc` — relevance as per-object weights; greedily
  maximise the selected weight while staying r-DisC diverse.
* :func:`multiradius_disc` — relevance as per-object radii; relevant
  objects demand closer representatives.
* :class:`StreamingDisC` — the online version of the problem:
  incrementally maintained DisC subsets over arriving objects.

These have no paper numbers to compare against (the paper only sketches
them); they are tested for their stated invariants.
"""

from repro.core.extensions.multiradius import (
    multiradius_disc,
    radii_from_relevance,
    verify_multiradius,
)
from repro.core.extensions.streaming import StreamingDisC
from repro.core.extensions.weighted import total_weight, weighted_disc

__all__ = [
    "weighted_disc",
    "total_weight",
    "multiradius_disc",
    "radii_from_relevance",
    "verify_multiradius",
    "StreamingDisC",
]

"""Weighted DisC diversity (paper Section 8, future work #1).

The paper sketches the first route for integrating *relevance* with DisC
diversity: "a 'weighted' variation of the DisC set, where each object
has an associated weight based on its relevance.  Now the goal is to
select a DisC subset having the maximum sum of weights."

Finding a maximum-weight independent dominating set is NP-hard (it
subsumes the unweighted problem), so we provide the natural greedy
heuristic in the spirit of Greedy-DisC: repeatedly select the white
object with the best score, where the score blends the object's own
weight with the white coverage it buys.  With ``alpha = 0`` this
degenerates to Greedy-DisC (pure coverage); with ``alpha = 1`` it is a
pure weight-greedy maximal independent set.

Because the output is still a maximal independent set of ``G_{P,r}``,
every result remains a valid r-DisC diverse subset (Lemma 1) — relevance
only steers *which* of the many valid subsets is returned.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cancellation import CHECKPOINT_EVERY, current_token
from repro.core._common import (
    LazyMaxHeap,
    attach_fresh_coloring,
    consume_stats,
    csr_fast_path,
    query_neighbors,
)
from repro.core.coloring import Color
from repro.core.result import DiscResult
from repro.graph.priority import MaxSegmentTree
from repro.index.base import NeighborIndex
from repro.validation import validate_radius

__all__ = ["weighted_disc", "total_weight"]


def weighted_disc(
    index: NeighborIndex,
    radius: float,
    weights: np.ndarray,
    *,
    alpha: float = 0.5,
    prune: bool = False,
) -> DiscResult:
    """Greedy maximum-weight r-DisC diverse subset.

    Parameters
    ----------
    weights:
        Non-negative relevance per object; higher is more relevant.
    alpha:
        Blend between relevance and coverage gain in the greedy score
        ``alpha * weight_rank + (1 - alpha) * coverage_rank`` — both
        normalised to [0, 1].  0 = pure coverage (Greedy-DisC-like),
        1 = pure relevance.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (index.n,):
        raise ValueError(
            f"weights must have shape ({index.n},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    radius = validate_radius(radius)

    before = index.stats.snapshot()
    counts = index.neighborhood_sizes(radius).astype(float)
    coloring = attach_fresh_coloring(index)

    weight_scale = float(weights.max()) or 1.0
    count_scale = float(counts.max()) or 1.0

    def score(object_id: int) -> float:
        return alpha * (weights[object_id] / weight_scale) + (1 - alpha) * (
            counts[object_id] / count_scale
        )

    # Both paths rank by the same quantised scores so lazy invalidation
    # (heap) and the segment tree compare exactly; counts only
    # decrease, so stale entries are always >= live.
    def quantised(object_id: int) -> int:
        return int(round(score(object_id) * 10**9))

    selected: List[int] = []
    csr = csr_fast_path(index, radius, coloring, prune=prune)
    try:
        if csr is not None:
            _weighted_csr(
                index, csr, coloring, counts, weights, alpha,
                weight_scale, count_scale, selected,
            )
        else:
            heap = LazyMaxHeap()
            token = current_token()
            for object_id in range(index.n):
                if token is not None and object_id % CHECKPOINT_EVERY == 0:
                    token.checkpoint()
                heap.push(object_id, quantised(object_id))
            pops = 0
            while coloring.any_white():
                if token is not None:
                    if pops % CHECKPOINT_EVERY == 0:
                        token.checkpoint()
                    pops += 1
                pick = heap.pop_valid(quantised, coloring.is_white)
                if pick is None:
                    raise RuntimeError(
                        "weighted greedy lost track of white objects"
                    )
                coloring.set_black(pick)
                selected.append(pick)
                neighbors = query_neighbors(index, pick, radius, prune=prune)
                newly_grey = [n for n in neighbors if coloring.is_white(n)]
                for grey_id in newly_grey:
                    coloring.set_grey(grey_id)
                for grey_id in newly_grey:
                    for other in query_neighbors(index, grey_id, radius, prune=prune):
                        if coloring.is_white(other):
                            counts[other] -= 1
                            heap.push(other, quantised(other))
    finally:
        index.detach_coloring()

    return DiscResult(
        selected=selected,
        radius=radius,
        algorithm=f"Weighted-DisC (alpha={alpha:g})",
        stats=consume_stats(index, before),
        coloring=coloring,
        meta={
            "alpha": alpha,
            "total_weight": float(weights[selected].sum()),
            "engine": "legacy" if csr is None else "csr",
        },
    )


def _weighted_csr(
    index: NeighborIndex,
    csr,
    coloring,
    counts: np.ndarray,
    weights: np.ndarray,
    alpha: float,
    weight_scale: float,
    count_scale: float,
    selected: List[int],
) -> None:
    """Vectorised weighted greedy over a CSR adjacency.

    Selection order is identical to the heap path: scores are the same
    quantised blend (NumPy's and Python's ``round`` both round half to
    even over the same float64 arithmetic), the segment-tree argmax
    breaks ties on the lowest id exactly like the ``(-score, id)``
    heap, and count maintenance follows the same grey update rule.
    """
    white_code = int(Color.WHITE)
    codes = coloring.codes_view()

    def quantise(ids: np.ndarray) -> np.ndarray:
        blended = alpha * (weights[ids] / weight_scale) + (1 - alpha) * (
            counts[ids] / count_scale
        )
        return np.round(blended * 10**9).astype(np.int64)

    all_ids = np.arange(csr.n)
    scores = quantise(all_ids)
    tree = MaxSegmentTree(scores)
    candidate_mask = codes == white_code

    token = current_token()
    pops = 0
    while coloring.any_white():
        if token is not None:
            if pops % CHECKPOINT_EVERY == 0:
                token.checkpoint()
            pops += 1
        pick = tree.argmax()
        if scores[pick] < 0:
            raise RuntimeError("weighted greedy lost track of white objects")
        coloring.set_black(pick)
        selected.append(pick)
        neighbors = csr.neighbors(pick)
        newly_grey = neighbors[codes[neighbors] == white_code].astype(np.int64)
        coloring.set_grey_many(newly_grey)
        # Legacy accounting: one query for the pick plus one grey-update
        # query per newly-grey object.
        index.stats.range_queries += 1 + newly_grey.size
        candidate_mask[pick] = False
        candidate_mask[newly_grey] = False
        touched = csr.decrement(counts, newly_grey, candidate_mask)
        scores[touched] = quantise(touched)
        retired = np.append(newly_grey, np.int64(pick))
        scores[retired] = -1
        stale = np.concatenate((touched, retired))
        tree.update_many(stale, scores[stale])


def total_weight(weights: np.ndarray, selected: List[int]) -> float:
    """Sum of weights over a selection (the Section 8 objective)."""
    return float(np.asarray(weights, dtype=float)[list(selected)].sum())

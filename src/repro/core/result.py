"""Result objects returned by every DisC heuristic.

A :class:`DiscResult` records the selected subset in selection order, the
radius, the cost counters consumed, and — when the caller asks for it —
the per-object distance to the closest selected (black) object.  That
last array is exactly the leaf-node extension of Section 5.2: zooming-in
needs it to decide which grey objects stay covered under the smaller
radius.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.coloring import Coloring
from repro.index.base import IndexStats

__all__ = ["DiscResult", "closest_black_distances"]


def _plain(value):
    """Recursively strip NumPy types so the payload is JSON-safe.

    Results accumulate NumPy scalars and arrays in ``selected`` /
    ``meta`` / ``stats.extra``; the wire format wants plain Python.
    Unknown object types pass through untouched (the caller owns their
    serialisability, exactly like request options).
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


@dataclass
class DiscResult:
    """Output of a DisC heuristic (or zooming operation).

    Attributes
    ----------
    selected:
        Object ids in the order the algorithm selected them (black
        objects).
    radius:
        The radius the subset is diverse for.
    algorithm:
        Human-readable heuristic name ("Basic-DisC", "Greedy-DisC", ...).
    stats:
        Index cost counters consumed by this run (difference snapshot).
    coloring:
        Final coloring; useful for zooming and debugging.  May be None
        when the caller requested a detached result.
    closest_black:
        ``closest_black[i]`` = distance from object i to its closest
        black object (0 for blacks themselves).  Section 5.2's leaf-node
        extension; filled when ``track_closest_black`` was requested or
        by :func:`closest_black_distances`.
    """

    selected: List[int]
    radius: float
    algorithm: str
    stats: IndexStats = field(default_factory=IndexStats)
    coloring: Optional[Coloring] = None
    closest_black: Optional[np.ndarray] = None
    meta: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """|S| — the paper's Table 3 metric."""
        return len(self.selected)

    @property
    def node_accesses(self) -> int:
        """M-tree node accesses — the paper's Figures 7-12/15 metric."""
        return self.stats.node_accesses

    def selected_set(self) -> set:
        return set(self.selected)

    # ------------------------------------------------------------------
    # Wire format (the response side of repro.requests)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form: JSON-serialisable for JSON-safe ``meta``.

        ``coloring`` is deliberately not serialised — it is a live
        index-subscribed object meaningful only in the producing
        process; a result rebuilt via :meth:`from_dict` carries
        ``coloring=None`` (zooming recomputes what it needs from
        ``selected`` + ``closest_black``).

        The payload is *canonical*: selection ids are Python ints no
        matter which dtype the producing engine used (the CSR paths
        select int32 ids, the per-query paths int64 — and the platform
        default integer differs across OSes), and ``stats.extra`` /
        ``meta`` are stripped of NumPy scalars.  Serialising the same
        logical result therefore yields the same bytes everywhere, and
        ``from_dict(r.to_dict()).to_dict() == r.to_dict()`` exactly —
        the service layer relies on this to coalesce and cache
        responses.
        """
        return {
            "selected": [int(i) for i in self.selected],
            "radius": float(self.radius),
            "algorithm": self.algorithm,
            "stats": _plain(self.stats.to_dict()),
            "closest_black": (
                None
                if self.closest_black is None
                else [float(d) for d in self.closest_black]
            ),
            "meta": _plain(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DiscResult":
        """Rebuild a result from :meth:`to_dict` output."""
        closest = payload.get("closest_black")
        return cls(
            selected=[int(i) for i in payload["selected"]],
            radius=float(payload["radius"]),
            algorithm=payload["algorithm"],
            stats=IndexStats.from_dict(payload.get("stats", {})),
            coloring=None,
            closest_black=(
                None if closest is None else np.asarray(closest, dtype=float)
            ),
            meta=dict(payload.get("meta", {})),
        )

    def __repr__(self) -> str:
        return (
            f"DiscResult(algorithm={self.algorithm!r}, r={self.radius}, "
            f"size={self.size}, node_accesses={self.node_accesses})"
        )


def closest_black_distances(index, selected: List[int]) -> np.ndarray:
    """Distance from every object to its closest object in ``selected``.

    Implemented with one range-query-free vectorised pass (metric
    ``to_point`` per selected object); used as the post-processing step
    the paper requires after a pruned construction, where grey objects
    may have missed closest-black updates.
    """
    distances = np.full(index.n, np.inf)
    for black in selected:
        d = index.metric.to_point(index.points, index.points[black])
        np.minimum(distances, d, out=distances)
    return distances

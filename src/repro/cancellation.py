"""Cooperative cancellation and deadline budgets.

The serving layer (:mod:`repro.service`) promises that a timed-out
request *frees its executor slot* instead of orphaning a selection that
nobody will read.  Python threads cannot be killed, so the contract is
cooperative: long-running loops — the segment-tree pop loops in
:mod:`repro.core.greedy`, the scan loop of Basic-DisC, and the chunked
adjacency builders in :mod:`repro.graph.csr` / :mod:`repro.graph.blocked`
— call :meth:`CancellationToken.checkpoint` every
:data:`CHECKPOINT_EVERY` iterations and abort with
:class:`OperationCancelled` when the budget is spent.

The token travels *ambiently* through a :class:`contextvars.ContextVar`
rather than through function signatures: ``disc_select`` and the
heuristic entry points keep their public signatures, and library users
who never create a token pay one ``ContextVar.get()`` per loop (the
checkpoint branch is skipped entirely when no token is installed).

This module is dependency-free on purpose — graph and core modules
import it, and it must never import back into :mod:`repro.service`.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Iterator, Optional

__all__ = [
    "CHECKPOINT_EVERY",
    "CancellationToken",
    "OperationCancelled",
    "cancellation_scope",
    "current_token",
]

#: Loop iterations between cooperative checkpoints.  One segment-tree
#: pop is microseconds of work, so 256 pops keeps the cancellation
#: latency far below any realistic deadline while making the
#: ``monotonic()`` call invisible in profiles.
CHECKPOINT_EVERY = 256


class OperationCancelled(RuntimeError):
    """A cooperative abort: the deadline passed or the token was cancelled.

    ``source`` records who imposed the budget — ``"client"`` (the
    request carried ``timeout_ms``) maps to HTTP 408, ``"server"`` (the
    server-enforced cap, or an explicit :meth:`CancellationToken.cancel`)
    maps to 504.
    """

    def __init__(self, message: str, *, source: str = "server") -> None:
        super().__init__(message)
        self.source = source


class CancellationToken:
    """One request's cancellation/deadline budget plus its degraded flag.

    Thread-compatible by construction: ``deadline`` and ``source`` are
    immutable after ``__init__``; ``cancel()`` / ``mark_degraded()`` are
    single-reference writes that any racing ``checkpoint()`` observes at
    its next iteration (the tolerance is one checkpoint interval by
    design).
    """

    __slots__ = ("deadline", "source", "degraded", "_cancelled")

    def __init__(
        self, deadline: Optional[float] = None, *, source: str = "server"
    ) -> None:
        #: Absolute ``time.monotonic()`` deadline, or None for no budget.
        self.deadline = deadline
        self.source = source
        #: None, or a short reason string once a degraded artefact (e.g.
        #: a stale adjacency tier) served this request.
        self.degraded: Optional[str] = None
        self._cancelled = False

    @classmethod
    def with_timeout(
        cls, seconds: Optional[float], *, source: str = "server"
    ) -> "CancellationToken":
        """A token expiring ``seconds`` from now (None = no deadline)."""
        if seconds is None:
            return cls(None, source=source)
        return cls(time.monotonic() + float(seconds), source=source)

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request a cooperative abort at the next checkpoint."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def remaining(self) -> Optional[float]:
        """Seconds left in the budget (never negative), None = unbounded."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def mark_degraded(self, reason: str) -> None:
        """Record that a degraded artefact served this request."""
        if self.degraded is None:
            self.degraded = str(reason)

    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Raise :class:`OperationCancelled` if the budget is spent."""
        if self._cancelled:
            raise OperationCancelled("operation cancelled", source=self.source)
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise OperationCancelled(
                "deadline exceeded", source=self.source
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CancellationToken(remaining={self.remaining()}, "
            f"source={self.source!r}, cancelled={self._cancelled}, "
            f"degraded={self.degraded!r})"
        )


#: The ambient token of the current (thread's) request, if any.
_CURRENT: ContextVar[Optional[CancellationToken]] = ContextVar(
    "repro_cancellation_token", default=None
)


def current_token() -> Optional[CancellationToken]:
    """The ambient :class:`CancellationToken`, or None outside a scope.

    Hot loops fetch this once before iterating and skip checkpointing
    entirely when it is None, so the library path stays free.
    """
    return _CURRENT.get()


@contextlib.contextmanager
def cancellation_scope(token: Optional[CancellationToken]) -> Iterator[Optional[CancellationToken]]:
    """Install ``token`` as the ambient token for the ``with`` body.

    The serving layer enters this inside the worker thread that runs
    the computation, so no cross-thread context propagation is needed.
    Scopes nest; the previous token is restored on exit.
    """
    handle = _CURRENT.set(token)
    try:
        yield token
    finally:
        _CURRENT.reset(handle)

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library, dataset and algorithm inventory.
``select``
    Diversify a built-in dataset at a radius; optionally render an
    ASCII map and dump the selected ids.
``zoom``
    Select at one radius, then zoom in/out to another and report how
    much of the solution survived.
``compare``
    The Figure 6 model comparison table on a dataset/radius.
``table3``
    Regenerate one sub-table of the paper's Table 3.
``bench``
    Wall-clock benchmark of index build + Greedy-DisC selection across
    dataset families, cardinalities and engines; emits
    ``results/BENCH_perf.json``.  ``--quick`` restricts to n=2000 for a
    seconds-scale smoke run.  ``--session`` benchmarks the session
    adjacency cache; ``--service`` replays a multi-client zoom trace
    against the HTTP serving layer (emits ``results/BENCH_service.json``).
``serve``
    The asyncio JSON-over-HTTP serving layer (:mod:`repro.service`):
    shared dataset registry, process-wide adjacency cache, request
    coalescing.  ``--port 0`` binds an ephemeral port and prints it;
    SIGINT/SIGTERM shut down cleanly (exit 0).

Performance & engines
---------------------
The simple engines (``brute``, ``grid``, ``kdtree``) auto-enable the
CSR neighborhood engine (see :mod:`repro.graph.csr`): the fixed-radius
adjacency is materialised once as int32 CSR arrays and the heuristics
run as vectorised array ops, ~10-100x faster than the per-query path
at paper scale.  On clustered workloads the grid-backed builds upgrade
further to the blocked adjacency (:mod:`repro.graph.blocked`): provably
dense cell pairs stay implicit, cutting adjacency memory and build time
by the dense fraction with byte-identical selections.  Pass
``accelerate=False`` through ``engine_options`` (API) to force the
legacy per-query path; the M-tree never uses the CSR engine so its
node-access accounting matches the paper.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro import __version__
from repro.api import DiscSession
from repro.baselines import jaccard_distance
from repro.datasets import (
    cameras_dataset,
    cities_dataset,
    clustered_dataset,
    uniform_dataset,
)
from repro.experiments import (
    ALGORITHMS,
    TABLE3_ALGORITHMS,
    ExperimentDataset,
    experiment_suite,
    format_table,
    model_comparison,
    sweep,
)
from repro.experiments.plotting import ascii_scatter

__all__ = ["main", "build_parser"]

_DATASETS = {
    "uniform": lambda n, seed: uniform_dataset(n=n or 2500, seed=seed),
    "clustered": lambda n, seed: clustered_dataset(n=n or 2500, seed=seed),
    "cities": lambda n, seed: cities_dataset(n=n or 2000, seed=seed),
    "cameras": lambda n, seed: cameras_dataset(n=n or 579, seed=seed),
}


def _load_dataset(name: str, n: Optional[int], seed: int):
    try:
        return _DATASETS[name](n, seed)
    except KeyError:
        raise SystemExit(
            f"unknown dataset {name!r}; choose from {sorted(_DATASETS)}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DisC diversity (Drosou & Pitoura, VLDB 2013) reproduction",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library inventory")

    def add_common(p):
        p.add_argument("--dataset", default="clustered", choices=sorted(_DATASETS))
        p.add_argument("--n", type=int, default=None, help="dataset cardinality")
        p.add_argument("--seed", type=int, default=42)

    def add_engine(p):
        from repro.engines import registry

        p.add_argument(
            "--engine",
            default="auto",
            choices=["auto"] + registry.names(),
            help="neighbor-index engine (auto = registry capability policy)",
        )

    p_select = sub.add_parser("select", help="compute an r-DisC diverse subset")
    add_common(p_select)
    add_engine(p_select)
    p_select.add_argument("--radius", type=float, required=True)
    p_select.add_argument(
        "--method", default="greedy", choices=["basic", "greedy", "greedy-c", "fast-c"]
    )
    p_select.add_argument("--plot", action="store_true", help="ASCII map (2-d data)")
    p_select.add_argument("--json", action="store_true", help="machine-readable output")

    p_zoom = sub.add_parser("zoom", help="select then zoom to another radius")
    add_common(p_zoom)
    add_engine(p_zoom)
    p_zoom.add_argument("--radius", type=float, required=True, help="initial radius")
    p_zoom.add_argument("--to", type=float, required=True, help="target radius")

    p_compare = sub.add_parser("compare", help="Figure 6 model comparison")
    add_common(p_compare)
    p_compare.add_argument("--radius", type=float, required=True)

    p_table3 = sub.add_parser("table3", help="regenerate a Table 3 sub-table")
    p_table3.add_argument(
        "--dataset",
        default="Uniform",
        choices=["Uniform", "Clustered", "Cities", "Cameras"],
    )
    p_table3.add_argument(
        "--engine",
        default="mtree",
        choices=["mtree", "csr"],
        help="mtree = the paper's instrument; csr = fast solution-size "
        "path (greedy sizes identical, no node accesses)",
    )

    p_bench = sub.add_parser(
        "bench", help="wall-clock engine benchmark (emits BENCH_perf.json)"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="n=2000 only (seconds instead of minutes)",
    )
    p_bench.add_argument(
        "--workload", action="append", choices=["uniform", "clustered", "cities"],
        help="restrict workload families (repeatable; default all)",
    )
    p_bench.add_argument(
        "--out", default=None, help="JSON output path (default results/BENCH_perf.json)"
    )
    p_bench.add_argument(
        "--session", action="store_true",
        help="session adjacency-cache benchmark instead of the engine "
        "sweep (repeated-radius zoom sequence, session vs one-shot; "
        "emits results/BENCH_session.json)",
    )
    p_bench.add_argument(
        "--service", action="store_true",
        help="serving-layer load benchmark: multi-client zoom trace "
        "over HTTP, shared cache + coalescing vs stateless baseline "
        "(emits results/BENCH_service.json)",
    )
    p_bench.add_argument(
        "--clients", type=int, default=4,
        help="concurrent clients for --service (default 4)",
    )

    p_serve = sub.add_parser(
        "serve", help="asyncio JSON-over-HTTP serving layer (repro.service)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8722,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    p_serve.add_argument(
        "--datasets", default="uniform,clustered,cities,cameras",
        help="comma-separated built-in datasets to register (loaded "
        "lazily on first request)",
    )
    p_serve.add_argument(
        "--n", type=int, default=None,
        help="cardinality for the synthetic datasets (default per dataset)",
    )
    p_serve.add_argument("--seed", type=int, default=42)
    add_engine(p_serve)
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = classic single-process server; "
        ">1 starts a supervised crash-resilient pool with failover "
        "routing and shared-memory adjacency)",
    )
    p_serve.add_argument(
        "--threads", type=int, default=4,
        help="selection thread-pool size per worker process (the "
        "compute admission bound)",
    )
    p_serve.add_argument(
        "--replication", type=int, default=None,
        help="with --workers N>1: replicas per dataset (default: every "
        "worker serves every dataset)",
    )
    p_serve.add_argument(
        "--no-shm", action="store_true",
        help="with --workers N>1: disable the shared-memory adjacency "
        "segments (each worker builds and holds its own copies)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="queued+running computation cap before 503 (0 = unbounded)",
    )
    p_serve.add_argument(
        "--cache-entries", type=int, default=64,
        help="shared adjacency cache entry budget",
    )
    p_serve.add_argument(
        "--cache-mb", type=float, default=None,
        help="shared adjacency cache byte budget in MiB (default unbounded)",
    )
    p_serve.add_argument(
        "--ttl", type=float, default=None,
        help="seconds a cached adjacency stays valid (default forever)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared adjacency cache (stateless baseline)",
    )
    p_serve.add_argument(
        "--no-coalesce", action="store_true",
        help="disable single-flighting of identical concurrent requests",
    )
    p_serve.add_argument(
        "--default-timeout-ms", type=float, default=None,
        help="deadline applied to requests without their own timeout_ms "
        "(default: unbounded)",
    )
    p_serve.add_argument(
        "--max-timeout-ms", type=float, default=None,
        help="server cap on client timeout_ms budgets (expiry of a "
        "capped budget answers 504, not 408)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds to let in-flight requests finish on SIGTERM/SIGINT "
        "before dropping connections",
    )
    p_serve.add_argument(
        "--live", action="store_true",
        help="serve the datasets as *mutable* live datasets: POST "
        "/mutate accepts insert/delete batches, adjacency is maintained "
        "incrementally, and selections can be repaired instead of "
        "recomputed",
    )
    p_serve.add_argument(
        "--faults", default=None, metavar="JSON",
        help="fault-injection config as JSON (see repro.service.faults."
        "FaultConfig), e.g. '{\"seed\": 7, \"build_failure_rate\": 0.2}'",
    )
    p_serve.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="write one JSONL trace record per completed request "
        "(size-capped rotation to PATH.1; with --workers N>1 each "
        "worker writes PATH.w<k> and the front writes PATH)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="inspect request-trace JSONL logs written via --trace-log",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_sum = trace_sub.add_parser(
        "summarize", help="slowest-span rollup across one or more logs"
    )
    p_trace_sum.add_argument("paths", nargs="+", metavar="PATH")
    p_trace_sum.add_argument(
        "--top", type=int, default=10,
        help="how many slowest traces to list (default 10)",
    )
    p_trace_sum.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_trace_val = trace_sub.add_parser(
        "validate",
        help="schema-validate every record; exits nonzero on problems",
    )
    p_trace_val.add_argument("paths", nargs="+", metavar="PATH")

    p_worker = sub.add_parser(
        "worker",
        help="supervised worker process (internal; spawned by "
        "`repro serve --workers N`)",
    )
    p_worker.add_argument(
        "--config", required=True, metavar="JSON",
        help="worker config JSON emitted by the supervisor",
    )

    p_lint = sub.add_parser(
        "lint",
        help="repo-aware static analysis (concurrency, cancellation, "
        "dtype discipline); exits nonzero on findings",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--rule", action="append", dest="rules", metavar="NAME",
        help="run only this rule (repeatable; see --list-rules)",
    )
    p_lint.add_argument(
        "--format", choices=("human", "json"), default="human", dest="fmt",
        help="output format (default: human)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _cmd_info(_args) -> int:
    from repro.engines import registry

    print(f"repro {__version__} — DisC diversity reproduction (VLDB 2013)")
    print("\ndatasets: " + ", ".join(sorted(_DATASETS)))
    print("heuristics: " + ", ".join(sorted(ALGORITHMS)))
    print("engines (auto = capability policy):")
    for entry in registry.entries():
        print(f"  {entry.name:<8} {entry.capabilities.description}")
    print("         (CSR-capable engines auto-enable the CSR neighborhood engine;")
    print("          `python -m repro bench --quick` times them)")
    print("\nsee DESIGN.md for the experiment index and EXPERIMENTS.md for")
    print("paper-vs-measured results; `pytest benchmarks/ --benchmark-only`")
    print("regenerates every table and figure.")
    return 0


def _cmd_select(args) -> int:
    from repro.requests import SelectRequest

    data = _load_dataset(args.dataset, args.n, args.seed)
    session = DiscSession(data, engine=args.engine)
    request = SelectRequest(radius=args.radius, method=args.method)
    result = session.execute(request)
    report = session.verify()
    if args.json:
        print(json.dumps({
            "dataset": data.name,
            "n": data.n,
            "radius": args.radius,
            "method": args.method,
            "engine": session.engine,
            "request": request.validate().to_dict(),
            "size": result.size,
            "node_accesses": result.node_accesses,
            "selected": result.selected,
            "covering": report.is_covering,
            "independent": report.is_independent,
        }))
        return 0
    print(f"{data.name} (n={data.n}), r={args.radius}: "
          f"{result.size} diverse objects via {result.algorithm}")
    print(f"node accesses: {result.node_accesses}  |  {report}")
    if args.plot:
        if data.dim != 2:
            print("(--plot requires 2-d data)", file=sys.stderr)
        else:
            print(ascii_scatter(data.points, result.selected))
    return 0


def _cmd_zoom(args) -> int:
    data = _load_dataset(args.dataset, args.n, args.seed)
    session = DiscSession(data, engine=args.engine)
    first = session.select(args.radius)
    if args.to < args.radius:
        second = session.zoom_in(args.to)
        direction = "in"
    elif args.to > args.radius:
        second = session.zoom_out(args.to)
        direction = "out"
    else:
        raise SystemExit("--to must differ from --radius")
    shared = len(set(first.selected) & set(second.selected))
    print(f"r={args.radius}: {first.size} objects  ->  zoom-{direction} to "
          f"r={args.to}: {second.size} objects")
    print(f"kept from previous view: {shared}  |  Jaccard distance: "
          f"{jaccard_distance(first.selected, second.selected):.3f}")
    print(f"zoom cost: {second.node_accesses} node accesses "
          f"(initial solution: {first.node_accesses})")
    print(session.verify())
    return 0


def _cmd_compare(args) -> int:
    data = _load_dataset(args.dataset, args.n, args.seed)
    table = model_comparison(data, args.radius)
    rows = [
        [name, row["size"], row["fmin"], row["fsum"], row["coverage"],
         row["representation_error"]]
        for name, row in table.items()
    ]
    print(format_table(
        f"Model comparison — {data.name} (r={args.radius})",
        ["method", "k", "fMin", "fSum", "coverage", "repr.err"],
        rows,
        float_fmt="{:.3f}",
    ))
    return 0


def _cmd_table3(args) -> int:
    exp = experiment_suite()[args.dataset]
    records = sweep(exp, TABLE3_ALGORITHMS, engine=args.engine)
    rows = [
        [name] + [rec.size for rec in records[name]] for name in TABLE3_ALGORITHMS
    ]
    suffix = " [csr engine]" if args.engine == "csr" else ""
    print(format_table(
        f"Table 3: solution size — {exp.name} (n={exp.dataset.n}){suffix}",
        ["algorithm"] + [f"r={r:g}" for r in exp.radii],
        rows,
    ))
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments import (
        render_bench_table,
        render_session_table,
        run_session_bench,
        run_wallclock_bench,
        write_bench_json,
        write_session_json,
    )

    if args.session and args.service:
        raise SystemExit("--session and --service are mutually exclusive")
    if args.service:
        from repro.service.load import (
            render_service_table,
            run_service_bench,
            write_service_json,
        )

        workloads = args.workload or ["clustered"]
        if len(workloads) > 1:
            raise SystemExit("bench --service takes a single --workload")
        payload = run_service_bench(
            workload=workloads[0], quick=args.quick, clients=args.clients
        )
        print(render_service_table(payload))
        out = args.out
        if out is None and (args.quick or args.workload):
            # Partial runs must not clobber the committed full baseline.
            from repro.experiments import results_dir

            out = os.path.join(results_dir(), "BENCH_service_quick.json")
        path = write_service_json(payload, out)
        print(f"[saved to {path}]")
        return 0

    if args.session:
        workloads = args.workload or ["clustered"]
        if len(workloads) > 1:
            raise SystemExit("bench --session takes a single --workload")
        payload = run_session_bench(workload=workloads[0], quick=args.quick)
        print(render_session_table(payload))
        out = args.out
        if out is None and (args.quick or args.workload):
            # Partial runs must not clobber the committed full baseline.
            from repro.experiments import results_dir

            out = os.path.join(results_dir(), "BENCH_session_quick.json")
        path = write_session_json(payload, out)
        print(f"[saved to {path}]")
        return 0

    payload = run_wallclock_bench(workloads=args.workload, quick=args.quick)
    print(render_bench_table(payload))
    out = args.out
    if out is None and (args.quick or args.workload):
        # Partial runs must not clobber the committed full baseline.
        from repro.experiments import results_dir

        out = os.path.join(results_dir(), "BENCH_perf_quick.json")
    path = write_bench_json(payload, out)
    print(f"[saved to {path}]")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service import (
        DatasetRegistry,
        DiscServer,
        FaultConfig,
        FaultInjector,
        ServiceState,
        SharedCacheManager,
    )

    names = [name.strip() for name in args.datasets.split(",") if name.strip()]
    if not names:
        raise SystemExit("--datasets must name at least one dataset")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.workers > 1:
        return _serve_supervised(args, names)
    registry = DatasetRegistry()
    for name in names:
        try:
            registry.register_builtin(name, n=args.n, seed=args.seed)
            if args.live:
                registry.promote_live(name)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    faults = None
    if args.faults:
        import json as _json

        try:
            faults = FaultInjector(FaultConfig.from_dict(_json.loads(args.faults)))
        except (ValueError, TypeError) as exc:
            raise SystemExit(f"--faults: {exc}") from None
    cache = None
    if not args.no_cache:
        cache = SharedCacheManager(
            max_entries=args.cache_entries,
            max_bytes=(
                None if args.cache_mb is None else int(args.cache_mb * 2**20)
            ),
            ttl_s=args.ttl,
            faults=faults,
        )
    state = ServiceState(
        registry,
        cache=cache,
        engine=args.engine,
        workers=args.threads,
        max_inflight=args.max_inflight or None,
        coalesce=not args.no_coalesce,
        default_timeout_ms=args.default_timeout_ms,
        max_timeout_ms=args.max_timeout_ms,
        faults=faults,
    )

    async def _main() -> None:
        server = DiscServer(
            state,
            host=args.host,
            port=args.port,
            drain_s=args.drain_timeout,
            trace_log=args.trace_log,
        )
        await server.start()
        print(
            f"[serve] listening on http://{args.host}:{server.port} "
            f"(datasets: {', '.join(registry.names())}; engine={args.engine}; "
            f"threads={args.threads}; cache="
            f"{'off' if cache is None else 'shared'})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loop; KeyboardInterrupt still works
        try:
            await stop.wait()
        except KeyboardInterrupt:  # pragma: no cover - signal-handler path
            pass
        print("[serve] shutting down", flush=True)
        await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - windows fallback
        pass
    finally:
        state.close()
    return 0


def _serve_supervised(args, names) -> int:
    """``repro serve --workers N`` (N > 1): the supervised cluster."""
    import signal
    import threading

    from repro.service import FaultConfig
    from repro.service.supervisor import start_supervised

    faults = None
    if args.faults:
        import json as _json

        try:
            faults = FaultConfig.from_dict(_json.loads(args.faults)).to_dict()
        except (ValueError, TypeError) as exc:
            raise SystemExit(f"--faults: {exc}") from None
    try:
        cluster = start_supervised(
            names,
            args.workers,
            host=args.host,
            port=args.port,
            use_shm=not args.no_shm,
            replication=args.replication,
            n=args.n,
            seed=args.seed,
            engine=args.engine,
            threads=args.threads,
            max_inflight=args.max_inflight or None,
            cache=not args.no_cache,
            cache_entries=args.cache_entries,
            cache_mb=args.cache_mb,
            ttl_s=args.ttl,
            coalesce=not args.no_coalesce,
            default_timeout_ms=args.default_timeout_ms,
            max_timeout_ms=args.max_timeout_ms,
            faults=faults,
            live=args.live,
            drain_s=args.drain_timeout,
            trace_log=args.trace_log,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"[serve] listening on http://{args.host}:{cluster.port} "
        f"(datasets: {', '.join(names)}; engine={args.engine}; "
        f"workers={args.workers}x{args.threads} threads; supervised; "
        f"shm={'off' if args.no_shm else 'on'})",
        flush=True,
    )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("[serve] shutting down", flush=True)
    cluster.stop(drain_s=args.drain_timeout)
    return 0


def _cmd_worker(args) -> int:
    """Supervised worker entry point (spawned by the supervisor).

    Binds an ephemeral port, prints a one-line JSON ready handshake on
    stdout, and serves until SIGTERM.  Any startup failure is reported
    as a ``worker_error`` JSON line so the supervisor can surface it.
    """
    import asyncio
    import json as _json
    import signal

    from repro.service import (
        DatasetRegistry,
        DiscServer,
        FaultConfig,
        FaultInjector,
        ServiceState,
        SharedCacheManager,
    )
    from repro.service import shm as shm_mod
    from repro.service.registry import BUILTIN_DATASETS
    from repro.service.supervisor import shared_dataset_loader

    def _fail(message: str) -> int:
        print(_json.dumps({"worker_error": message}), flush=True)
        return 2

    try:
        config = _json.loads(args.config)
    except ValueError as exc:
        return _fail(f"bad --config JSON: {exc}")
    if not isinstance(config, dict):
        return _fail("--config must be a JSON object")

    store = None
    state = None
    try:
        worker_id = int(config.get("worker_id", 0))
        names = list(config.get("datasets") or [])
        if not names:
            return _fail("worker config names no datasets")
        seed = int(config.get("seed") or 42)
        n = config.get("n")
        run_id = config.get("run_id")
        if run_id and shm_mod.shm_available():
            store = shm_mod.SharedSegmentStore(run_id)
        registry = DatasetRegistry()
        for name in names:
            if store is not None and name in BUILTIN_DATASETS:
                registry.register_spec(
                    name,
                    shared_dataset_loader(store, name, n, seed),
                    family=name,
                    seed=seed,
                    shared_points=True,
                )
            else:
                registry.register_builtin(name, n=n, seed=seed)
        if config.get("live"):
            # Mutable serving: every dataset becomes a MutableDataset
            # (loaded now — version 0 must exist before the supervisor
            # replays any mutation log at this worker).
            for name in names:
                registry.promote_live(name)
        faults = None
        if config.get("faults"):
            faults = FaultInjector(
                FaultConfig.from_dict(config["faults"]), process_faults=True
            )
        cache = None
        if config.get("cache", True):
            cache_mb = config.get("cache_mb")
            cache = SharedCacheManager(
                max_entries=int(config.get("cache_entries") or 64),
                max_bytes=None if cache_mb is None else int(cache_mb * 2**20),
                ttl_s=config.get("ttl_s"),
                faults=faults,
                backing=(
                    None if store is None else shm_mod.ShmCacheBacking(store)
                ),
            )
        state = ServiceState(
            registry,
            cache=cache,
            engine=config.get("engine") or "auto",
            engine_options=config.get("engine_options") or None,
            workers=int(config.get("threads") or 4),
            max_inflight=config.get("max_inflight"),
            coalesce=bool(config.get("coalesce", True)),
            default_timeout_ms=config.get("default_timeout_ms"),
            max_timeout_ms=config.get("max_timeout_ms"),
            faults=faults,
            identity={"worker_id": worker_id, "pid": os.getpid()},
        )
    except Exception as exc:
        return _fail(f"{type(exc).__name__}: {exc}")

    async def _main() -> None:
        server = DiscServer(
            state,
            host=config.get("host") or "127.0.0.1",
            port=0,
            drain_s=float(config.get("drain_s") or 5.0),
            trace_log=config.get("trace_log"),
        )
        await server.start()
        print(
            _json.dumps(
                {
                    "worker_ready": True,
                    "worker_id": worker_id,
                    "port": server.port,
                    "pid": os.getpid(),
                    "datasets": names,
                }
            ),
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal fallback
        pass
    finally:
        state.close()
        if store is not None:
            # Detach only — the segments belong to the supervisor's
            # run lease and outlive any single worker.
            store.close()
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.sink import (
        iter_trace_records,
        render_trace_summary,
        summarize_traces,
        validate_trace_record,
    )

    if args.trace_command == "summarize":
        summary = summarize_traces(args.paths, top=args.top)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_trace_summary(summary))
        return 0
    records = problems = 0
    for path in args.paths:
        for i, record in enumerate(iter_trace_records(path)):
            records += 1
            found = validate_trace_record(record)
            for problem in found:
                print(f"{path}: record {i}: {problem}")
            problems += len(found)
    print(f"[trace validate] {records} record(s) checked, {problems} problem(s)")
    return 0 if problems == 0 else 1


def _cmd_lint(args) -> int:
    from repro.analysis import main as lint_main

    argv = list(args.paths) + ["--format", args.fmt]
    for rule in args.rules or ():
        argv += ["--rule", rule]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


_COMMANDS = {
    "info": _cmd_info,
    "select": _cmd_select,
    "zoom": _cmd_zoom,
    "compare": _cmd_compare,
    "table3": _cmd_table3,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""repro — reproduction of "DisC Diversity: Result Diversification based
on Dissimilarity and Coverage" (Drosou & Pitoura, VLDB 2013).

Public surface:

* :func:`disc_select` / :func:`execute_request` / :class:`DiscSession` —
  the typed request pipeline (``SelectRequest`` in, ``DiscResult`` out;
  :class:`DiscDiversifier` is the deprecated session name).
* :mod:`repro.requests` — ``SelectRequest`` / ``EngineSpec`` request
  objects with JSON round-trip.
* :mod:`repro.engines` — engine capability registry + adjacency LRU.
* :mod:`repro.service` — the async multi-user serving layer (``repro
  serve``): shared dataset registry, process-wide cross-session
  adjacency cache, request coalescing.
* :mod:`repro.core` — the DisC heuristics, zooming, verification, bounds.
* :mod:`repro.mtree` — the M-tree substrate with node-access accounting.
* :mod:`repro.index` — brute-force / grid / KD-tree neighbor indexes.
* :mod:`repro.baselines` — MaxMin, MaxSum, k-medoids and quality metrics.
* :mod:`repro.datasets` — the paper's evaluation datasets.
* :mod:`repro.graph` — G_{P,r} graphs and exact small-instance solvers.
"""

from repro.api import (
    DiscDiversifier,
    DiscSession,
    build_index,
    disc_select,
    execute_request,
)
from repro.requests import EngineSpec, SelectRequest
from repro.core import (
    DiscResult,
    basic_disc,
    fast_c,
    greedy_c,
    greedy_disc,
    local_zoom,
    verify_disc,
    zoom_in,
    zoom_out,
)
from repro.datasets import (
    Dataset,
    cameras_dataset,
    cities_dataset,
    clustered_dataset,
    uniform_dataset,
)
from repro.distance import get_metric
from repro.index import BruteForceIndex, GridIndex, NeighborIndex
from repro.mtree import MTree, MTreeIndex

__version__ = "1.0.0"

__all__ = [
    "DiscSession",
    "DiscDiversifier",
    "SelectRequest",
    "EngineSpec",
    "build_index",
    "disc_select",
    "execute_request",
    "basic_disc",
    "greedy_disc",
    "greedy_c",
    "fast_c",
    "zoom_in",
    "zoom_out",
    "local_zoom",
    "verify_disc",
    "DiscResult",
    "Dataset",
    "uniform_dataset",
    "clustered_dataset",
    "cities_dataset",
    "cameras_dataset",
    "get_metric",
    "NeighborIndex",
    "BruteForceIndex",
    "GridIndex",
    "MTree",
    "MTreeIndex",
    "__version__",
]

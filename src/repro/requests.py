"""Typed, validated, serialisable request objects for the DisC pipeline.

The service story of the ROADMAP needs requests that can be validated
once, shipped over a wire and replayed deterministically.  This module
is the single definition of what a diversification request *is*:

* :class:`EngineSpec` — which neighbor-index engine to use (possibly
  ``"auto"``), the ``accelerate`` gate and constructor options.
  Validation and ``auto`` resolution go through the engine registry
  (:mod:`repro.engines.registry`), so unknown engines and unknown
  options fail with capability-derived messages.
* :class:`SelectRequest` — a full selection request: radius, method,
  method options and an :class:`EngineSpec`.  ``validate()`` checks
  everything that can be checked without data — radius finiteness,
  method name, method keyword names, engine spec — so a bad request
  fails identically whether the dataset is empty or not, and exactly
  once (no duplicated empty-path validation).

Both objects round-trip through plain dicts (``to_dict``/``from_dict``)
whose values are JSON-serialisable as long as the caller's options are;
:class:`~repro.core.result.DiscResult` offers the matching pair on the
response side.

Every front end — :func:`repro.api.disc_select`,
:class:`repro.api.DiscSession`, the CLI and the experiment runner —
funnels through these objects, so request semantics cannot drift
between entry points.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core import basic_disc, fast_c, greedy_c, greedy_disc
from repro.engines.registry import EngineEntry, registry
from repro.validation import validate_radius

__all__ = ["EngineSpec", "SelectRequest", "METHODS", "METHOD_NAMES"]

#: method name -> heuristic callable.  The registry of *algorithms*
#: (engines live in :mod:`repro.engines.registry`).
METHODS = {
    "basic": basic_disc,
    "greedy": greedy_disc,
    "greedy-c": greedy_c,
    "fast-c": fast_c,
}

#: Algorithm labels used when a heuristic is answered degenerately
#: (empty input) without running; match each heuristic's default name.
METHOD_NAMES = {
    "basic": "Basic-DisC",
    "greedy": "Grey-Greedy-DisC",
    "greedy-c": "Greedy-C",
    "fast-c": "Fast-C",
}

_METHOD_KEYWORDS: Dict[str, frozenset] = {}


def _method_keywords(method: str) -> frozenset:
    """Keyword-only parameter names of one heuristic (cached)."""
    found = _METHOD_KEYWORDS.get(method)
    if found is None:
        params = inspect.signature(METHODS[method]).parameters
        found = frozenset(
            name
            for name, param in params.items()
            if param.kind == inspect.Parameter.KEYWORD_ONLY
        )
        _METHOD_KEYWORDS[method] = found
    return found


def _validate_accelerate(value):
    """``accelerate`` must be exactly ``"auto"``, True or False (the
    engine gates use identity checks, so ``1``/``np.True_`` look-alikes
    would silently pick the wrong path)."""
    from repro.index.base import validate_accelerate

    return validate_accelerate(value)


@dataclass(frozen=True)
class EngineSpec:
    """Which engine to run a request on, and how.

    ``name`` is a registered engine (``"brute"``, ``"grid"``,
    ``"kdtree"``, ``"mtree"``) or ``"auto"`` (the registry's
    capability/workload policy).  ``options`` go to the engine
    constructor; ``accelerate`` gates the CSR adjacency engine.
    """

    name: str = "auto"
    accelerate: Union[str, bool] = "auto"
    options: Mapping = field(default_factory=dict)

    # ------------------------------------------------------------------
    def validate(self) -> "EngineSpec":
        """Normalise + validate against the registry; returns a new spec.

        Checks everything that does not need the data: the engine name
        exists (or is ``auto``), ``accelerate`` is well-formed, option
        names are valid for the engine (for ``auto``: for at least one
        registered engine) and ``accelerate=True`` is not requested
        from an engine with no CSR builder.
        """
        name = self.name.lower()
        options = dict(self.options)
        accelerate = self.accelerate
        if "accelerate" in options:
            # Legacy callers route the gate through engine_options; that
            # is honoured only while the typed field is at its default —
            # a spec saying both accelerate=True and
            # options={"accelerate": False} is a contradiction, not a
            # precedence question.
            from_options = options.pop("accelerate")
            if accelerate != "auto" and from_options != accelerate:
                raise ValueError(
                    f"conflicting accelerate values: spec says "
                    f"{accelerate!r}, options say {from_options!r}"
                )
            accelerate = from_options
        accelerate = _validate_accelerate(accelerate)
        # Resolution with no workload shape performs exactly the checks
        # that are data-independent (known name/options, accelerate
        # capability, auto satisfiability) — single-sourced in the
        # registry so validate() and resolve() can never disagree.
        registry.resolve(name, accelerate=accelerate, options=options)
        return EngineSpec(name=name, accelerate=accelerate, options=options)

    def resolve(
        self,
        *,
        n: Optional[int] = None,
        metric=None,
        radius: Optional[float] = None,
    ) -> Tuple[EngineEntry, Union[str, bool], dict]:
        """Resolve to ``(entry, accelerate, options)`` for a workload.

        ``auto`` runs the registry policy over the workload shape
        (cardinality, metric family, radius hint); concrete names just
        validate.  The returned options may have gained the policy's
        radius seed (e.g. the grid's ``cell_size``).
        """
        spec = self.validate()
        entry, options = registry.resolve(
            spec.name,
            accelerate=spec.accelerate,
            options=dict(spec.options),
            n=n,
            metric=metric,
            radius=radius,
        )
        return entry, spec.accelerate, options

    def build(self, points, metric, *, radius: Optional[float] = None):
        """Construct the index this spec describes for ``points``."""
        entry, accelerate, options = self.resolve(
            n=int(points.shape[0]), metric=metric, radius=radius
        )
        return entry.create(points, metric, accelerate, options)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "accelerate": self.accelerate,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, payload: Union[str, Mapping, "EngineSpec"]) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a bare name)."""
        if isinstance(payload, EngineSpec):
            return payload
        if isinstance(payload, str):
            return cls(name=payload)
        return cls(
            name=payload.get("name", "auto"),
            accelerate=payload.get("accelerate", "auto"),
            options=dict(payload.get("options", {})),
        )


@dataclass(frozen=True)
class SelectRequest:
    """One DisC diversification request, fully specified and portable.

    ``method_options`` are the heuristic's keyword arguments
    (``prune=True``, ``lazy=True``, ``update_variant="white"``,
    ``track_closest_black=True``, ...).  ``validate()`` raises
    ``ValueError`` for bad radii/methods/engines and ``TypeError`` for
    unknown method keywords — the same exceptions, with the same
    messages, on empty and non-empty data.
    """

    radius: float
    method: str = "greedy"
    method_options: Mapping = field(default_factory=dict)
    engine: EngineSpec = field(default_factory=EngineSpec)

    # ------------------------------------------------------------------
    def validate(self) -> "SelectRequest":
        """Validate everything data-independent; returns a new request."""
        radius = validate_radius(self.radius)
        method = self.method.lower()
        if method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; expected one of {sorted(METHODS)}"
            )
        unknown = sorted(set(self.method_options) - _method_keywords(method))
        if unknown:
            raise TypeError(
                f"{METHODS[method].__name__}() got unexpected keyword "
                f"argument(s) {', '.join(map(repr, unknown))}"
            )
        return SelectRequest(
            radius=radius,
            method=method,
            method_options=dict(self.method_options),
            engine=EngineSpec.from_dict(self.engine).validate(),
        )

    def with_options(self, **defaults) -> "SelectRequest":
        """A copy whose method options gain ``defaults`` where unset."""
        merged = {**defaults, **dict(self.method_options)}
        return replace(self, method_options=merged)

    def empty_result_label(self) -> str:
        """The algorithm label the heuristic itself would have reported.

        Callers key logs on ``result.algorithm``, so the degenerate
        empty-input answer must carry the same variant-aware name as a
        real run of the identical request.
        """
        method = self.method.lower()
        options = self.method_options
        if method == "greedy":
            from repro.core.greedy import _variant_name

            update_variant = options.get("update_variant", "grey")
            if update_variant not in ("grey", "white"):
                raise ValueError(f"unknown update_variant {update_variant!r}")
            return _variant_name(
                update_variant,
                bool(options.get("lazy", False)),
                bool(options.get("prune", False)),
            )
        if method == "basic" and options.get("prune"):
            return "Basic-DisC (Pruned)"
        return METHOD_NAMES[method]

    def trace_features(self) -> dict:
        """The request's slice of the trace feature vector.

        The observability sink (:mod:`repro.obs.sink`) records one
        feature dict per request — this contributes the fields only the
        request knows (radius/method/engine); the serving state adds
        the dataset-side ones (name, n, metric, live version).  Kept
        flat and JSON-scalar so a policy-fitting campaign can consume
        the JSONL rows directly.
        """
        engine = EngineSpec.from_dict(self.engine)
        return {
            "radius": float(self.radius),
            "method": self.method,
            "engine": engine.name,
            "engine_options": dict(engine.options),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "radius": float(self.radius),
            "method": self.method,
            "method_options": dict(self.method_options),
            "engine": EngineSpec.from_dict(self.engine).to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SelectRequest":
        if "radius" not in payload:
            raise ValueError(
                "select request payload is missing the required 'radius' field"
            )
        return cls(
            radius=payload["radius"],
            method=payload.get("method", "greedy"),
            method_options=dict(payload.get("method_options", {})),
            engine=EngineSpec.from_dict(payload.get("engine", "auto")),
        )

    @classmethod
    def coerce(cls, request: Union["SelectRequest", Mapping]) -> "SelectRequest":
        """Accept a request object or its dict form uniformly."""
        if isinstance(request, SelectRequest):
            return request
        return cls.from_dict(request)

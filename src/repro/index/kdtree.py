"""KD-tree neighbor index backed by ``scipy.spatial.cKDTree``.

The paper's Section 8 lists "implementations using different data
structures" as future work; this engine provides one: a compiled KD-tree
for Minkowski metrics (Euclidean, Manhattan, Chebyshev and general Lp).
It is by far the fastest engine for low-dimensional numeric data and is
used by the test suite as a second independent oracle.

Not a metric-tree: it cannot index Hamming-coded categoricals (use the
M-tree or brute force there), and it reports no node accesses (SciPy
does not expose traversal counts), so it is unsuitable for the paper's
cost experiments — only for solution-size and application workloads.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy.spatial import cKDTree

from repro.distance import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)
from repro.index.base import NeighborIndex

__all__ = ["KDTreeIndex"]

_MINKOWSKI_P = {
    EuclideanMetric: 2.0,
    ManhattanMetric: 1.0,
    ChebyshevMetric: np.inf,
}


class KDTreeIndex(NeighborIndex):
    """SciPy cKDTree adapter implementing the NeighborIndex protocol."""

    def __init__(self, points: np.ndarray, metric, leafsize: int = 16):
        super().__init__(points, metric)
        p = _MINKOWSKI_P.get(type(self.metric))
        if p is None:
            if isinstance(self.metric, MinkowskiMetric):
                p = self.metric.p
            else:
                raise TypeError(
                    f"KDTreeIndex supports Minkowski-family metrics only, "
                    f"got {self.metric.name}"
                )
        self._p = p
        self._tree = cKDTree(np.asarray(points, dtype=float), leafsize=leafsize)

    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        self.stats.range_queries += 1
        hits = self._tree.query_ball_point(
            np.asarray(point, dtype=float), r=float(radius), p=self._p
        )
        return [int(i) for i in hits]

    def neighborhood_sizes(self, radius: float) -> np.ndarray:
        """Vectorised |N_r| for all objects via query_ball_tree."""
        lists = self._tree.query_ball_tree(self._tree, r=float(radius), p=self._p)
        # query_ball_tree includes the object itself; subtract it.
        return np.array([len(hits) - 1 for hits in lists], dtype=np.int64)

"""KD-tree neighbor index backed by ``scipy.spatial.cKDTree``.

The paper's Section 8 lists "implementations using different data
structures" as future work; this engine provides one: a compiled KD-tree
for Minkowski metrics (Euclidean, Manhattan, Chebyshev and general Lp).
It is by far the fastest engine for low-dimensional numeric data and is
used by the test suite as a second independent oracle.

Not a metric-tree: it cannot index Hamming-coded categoricals (use the
M-tree or brute force there), and it reports no node accesses (SciPy
does not expose traversal counts), so it is unsuitable for the paper's
cost experiments — only for solution-size and application workloads.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.distance import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)
from repro.engines.registry import EngineCapabilities, register_engine
from repro.graph.csr import CSRNeighborhood
from repro.index.base import NeighborIndex

__all__ = ["KDTreeIndex"]

_MINKOWSKI_P = {
    EuclideanMetric: 2.0,
    ManhattanMetric: 1.0,
    ChebyshevMetric: np.inf,
}


@register_engine(EngineCapabilities(
    name="kdtree",
    description="compiled SciPy KD-tree; tuning-free default for "
    "coordinate data at scale (no node-access counts)",
    metrics="minkowski",
    supports_csr=True,
    supports_blocked=False,
    cost_fidelity="none",
    auto_priority=1,
))
class KDTreeIndex(NeighborIndex):
    """SciPy cKDTree adapter implementing the NeighborIndex protocol."""

    def __init__(self, points: np.ndarray, metric, leafsize: int = 16):
        super().__init__(points, metric)
        p = _MINKOWSKI_P.get(type(self.metric))
        if p is None:
            if isinstance(self.metric, MinkowskiMetric):
                p = self.metric.p
            else:
                raise TypeError(
                    f"KDTreeIndex supports Minkowski-family metrics only, "
                    f"got {self.metric.name}"
                )
        self._p = p
        self._tree = cKDTree(np.asarray(points, dtype=float), leafsize=leafsize)

    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        self.stats.range_queries += 1
        hits = self._tree.query_ball_point(
            np.asarray(point, dtype=float), r=float(radius), p=self._p
        )
        return [int(i) for i in hits]

    def range_query_batch(
        self, ids: Sequence[int], radius: float, *, include_self: bool = False
    ) -> List[np.ndarray]:
        """Vectorised multi-center queries via one ``query_ball_point``
        call over all requested centers (compiled traversal)."""
        ids = np.asarray(ids, dtype=np.int64)
        radius = float(radius)
        self.stats.range_queries += ids.size
        csr = self.csr_neighborhood(radius, build=False)
        if csr is not None:
            rows = [csr.neighbors(i).astype(np.int64) for i in ids]
        else:
            hits = self._tree.query_ball_point(
                self.points[ids].astype(float), r=radius, p=self._p
            )
            rows = []
            for center, row in zip(ids, hits):
                row = np.sort(np.asarray(row, dtype=np.int64))
                rows.append(row[row != center])
        if include_self:
            rows = [np.append(row, np.int64(i)) for row, i in zip(rows, ids)]
        return rows

    def _build_csr(self, radius: float) -> CSRNeighborhood:
        """CSR adjacency from the tree's own pair enumeration."""
        pairs = self._tree.query_pairs(
            r=float(radius), p=self._p, output_type="ndarray"
        )
        rows = np.concatenate([pairs[:, 0], pairs[:, 1]])
        cols = np.concatenate([pairs[:, 1], pairs[:, 0]])
        return CSRNeighborhood.from_edges(rows, cols, self.n)

    def neighborhood_sizes(self, radius: float) -> np.ndarray:
        """Vectorised |N_r| for all objects: CSR degrees when the engine
        is on, else ``query_ball_tree``."""
        csr = self.csr_neighborhood(float(radius))
        if csr is not None:
            return csr.degrees.astype(np.int64)
        lists = self._tree.query_ball_tree(self._tree, r=float(radius), p=self._p)
        # query_ball_tree includes the object itself; subtract it.
        return np.array([len(hits) - 1 for hits in lists], dtype=np.int64)

"""Neighbor indexes: abstract protocol, brute-force oracle, uniform grid.

The M-tree index (the paper's substrate) lives in :mod:`repro.mtree` and
implements the same :class:`NeighborIndex` protocol.
"""

from repro.graph.csr import CSRNeighborhood
from repro.index.base import IndexStats, NeighborIndex
from repro.index.bruteforce import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTreeIndex

__all__ = [
    "CSRNeighborhood",
    "IndexStats",
    "NeighborIndex",
    "BruteForceIndex",
    "GridIndex",
    "KDTreeIndex",
]

"""Neighbor-index abstraction shared by every DisC algorithm.

The paper's heuristics need exactly two primitives from their substrate:

* an *iteration order* over object ids ("select an arbitrary white
  object" — arbitrary means "next in index order": insertion order for
  simple indexes, left-to-right leaf order for the M-tree), and
* *range queries* ``Q(p, r)`` returning the neighborhood ``N_r(p)``.

Keeping the algorithms index-generic lets the brute-force index act as a
semantic oracle for the M-tree in tests, and lets users plug in their own
spatial structures (the paper's Section 8 lists "implementations using
different data structures" as future work).

Cost accounting lives here too: :class:`IndexStats` counts range queries,
distance computations and — for tree-backed indexes — node accesses,
which is the cost metric of every figure in the paper's Section 6.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.distance import Metric, get_metric

__all__ = ["IndexStats", "NeighborIndex"]


@dataclass
class IndexStats:
    """Mutable cost counters attached to an index.

    ``node_accesses`` is the paper's headline metric (Figures 7-12, 15);
    non-tree indexes leave it at zero.  ``build_node_accesses`` separates
    construction cost so per-query costs stay comparable.
    """

    range_queries: int = 0
    distance_computations: int = 0
    node_accesses: int = 0
    build_node_accesses: int = 0
    extra: dict = field(default_factory=dict)

    def reset(self) -> None:
        """Zero all query-time counters (build counters persist)."""
        self.range_queries = 0
        self.distance_computations = 0
        self.node_accesses = 0
        self.extra = {}

    def snapshot(self) -> "IndexStats":
        """An independent copy of the current counters."""
        return IndexStats(
            range_queries=self.range_queries,
            distance_computations=self.distance_computations,
            node_accesses=self.node_accesses,
            build_node_accesses=self.build_node_accesses,
            extra=dict(self.extra),
        )

    def __sub__(self, other: "IndexStats") -> "IndexStats":
        return IndexStats(
            range_queries=self.range_queries - other.range_queries,
            distance_computations=self.distance_computations
            - other.distance_computations,
            node_accesses=self.node_accesses - other.node_accesses,
            build_node_accesses=self.build_node_accesses - other.build_node_accesses,
            extra=dict(self.extra),
        )


class NeighborIndex(abc.ABC):
    """Abstract base for all neighbor indexes.

    Concrete indexes store an immutable ``(n, d)`` point matrix and a
    metric, expose range queries by object id or by free point, and keep
    an :class:`IndexStats` counter.
    """

    def __init__(self, points: np.ndarray, metric) -> None:
        points = np.asarray(points)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-d, got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("cannot index an empty point set")
        self.points = points
        self.metric: Metric = get_metric(metric)
        self.stats = IndexStats()

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed objects."""
        return self.points.shape[0]

    def ids(self) -> Iterable[int]:
        """Object ids in the index's natural iteration order.

        This order is what the paper means by "arbitrary" selection in
        Basic-DisC; the M-tree overrides it with left-to-right leaf
        order to exploit locality (Section 5.1).
        """
        return range(self.n)

    @abc.abstractmethod
    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        """Ids of all objects within ``radius`` of the free ``point``."""

    def range_query(
        self, center_id: int, radius: float, *, include_self: bool = False
    ) -> List[int]:
        """The neighborhood ``N_r(center_id)`` (or ``N+_r`` with self).

        Subclasses may override for id-aware optimisations (the M-tree's
        bottom-up queries start from the leaf containing the object).
        """
        result = self.range_query_point(self.points[center_id], radius)
        if include_self:
            if center_id not in result:
                result.append(center_id)
            return result
        return [other for other in result if other != center_id]

    # ------------------------------------------------------------------
    # Bulk helpers used by the greedy heuristics
    # ------------------------------------------------------------------
    def neighborhood_sizes(self, radius: float) -> np.ndarray:
        """``|N_r(p_i)|`` for every object (self excluded).

        Greedy-DisC seeds its priority structure ``L'`` with these; the
        M-tree computes them during construction (Section 5.1), other
        indexes on demand.
        """
        sizes = np.empty(self.n, dtype=np.int64)
        for i in range(self.n):
            sizes[i] = len(self.range_query(i, radius))
        return sizes

    def distance(self, a: int, b: int) -> float:
        """Metric distance between two indexed objects."""
        self.stats.distance_computations += 1
        return self.metric.distance(self.points[a], self.points[b])

    # ------------------------------------------------------------------
    # Coloring hooks (no-ops for simple indexes)
    # ------------------------------------------------------------------
    @property
    def supports_pruning(self) -> bool:
        """Whether the index exploits grey-object pruning (Section 5.1)."""
        return False

    def attach_coloring(self, coloring) -> None:
        """Subscribe to color changes; simple indexes ignore them."""

    def detach_coloring(self) -> None:
        """Drop any coloring subscription."""

    # ------------------------------------------------------------------
    def validate_ids(self, ids: Sequence[int]) -> None:
        """Raise ``IndexError`` if any id is out of range (fail fast)."""
        for object_id in ids:
            if not 0 <= object_id < self.n:
                raise IndexError(
                    f"object id {object_id} out of range [0, {self.n})"
                )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, dim={self.points.shape[1]}, "
            f"metric={self.metric.name})"
        )

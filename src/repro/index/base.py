"""Neighbor-index abstraction shared by every DisC algorithm.

The paper's heuristics need exactly two primitives from their substrate:

* an *iteration order* over object ids ("select an arbitrary white
  object" — arbitrary means "next in index order": insertion order for
  simple indexes, left-to-right leaf order for the M-tree), and
* *range queries* ``Q(p, r)`` returning the neighborhood ``N_r(p)``.

Keeping the algorithms index-generic lets the brute-force index act as a
semantic oracle for the M-tree in tests, and lets users plug in their own
spatial structures (the paper's Section 8 lists "implementations using
different data structures" as future work).

Cost accounting lives here too: :class:`IndexStats` counts range queries,
distance computations and — for tree-backed indexes — node accesses,
which is the cost metric of every figure in the paper's Section 6.

Performance & engines
---------------------
Indexes that can materialise the full fixed-radius adjacency expose it
as a :class:`~repro.graph.csr.CSRNeighborhood` — or, on workloads whose
edge mass concentrates in provably-dense cell pairs, a
:class:`~repro.graph.blocked.BlockedNeighborhood` storing those pairs
implicitly — through :meth:`NeighborIndex.csr_neighborhood`; the DisC
heuristics consume either for vectorised selection when present (see
:mod:`repro.core.greedy`; both forms yield byte-identical selections).
The ``accelerate`` attribute gates this: ``"auto"`` (default) enables
the CSR engine on every index that implements :meth:`_build_csr`
(brute force, grid, KD-tree), ``False`` forces the legacy per-query
path, ``True`` insists on it.  The M-tree intentionally builds no CSR
so its per-query node-access accounting — the paper's headline cost
metric — stays untouched.  :meth:`range_query_batch` is the batched
companion of :meth:`range_query`: one call, many centers, with
vectorised overrides in the simple indexes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.distance import Metric, get_metric
from repro.engines.cache import AdjacencyCache
from repro.graph.csr import CSRNeighborhood

__all__ = ["IndexStats", "NeighborIndex", "validate_accelerate"]


def validate_accelerate(value):
    """Check an ``accelerate`` flag is exactly ``"auto"``, True or False.

    The gates use identity checks, so look-alikes (``1``, ``0``,
    ``np.True_``) would otherwise silently select the wrong path —
    reject them loudly instead.
    """
    if value == "auto" or value is True or value is False:
        return value
    raise ValueError(
        f'accelerate must be "auto", True or False, got {value!r}'
    )


@dataclass
class IndexStats:
    """Mutable cost counters attached to an index.

    ``node_accesses`` is the paper's headline metric (Figures 7-12, 15);
    non-tree indexes leave it at zero.  ``build_node_accesses`` separates
    construction cost so per-query costs stay comparable.
    """

    range_queries: int = 0
    distance_computations: int = 0
    node_accesses: int = 0
    build_node_accesses: int = 0
    extra: dict = field(default_factory=dict)

    def reset(self) -> None:
        """Zero all query-time counters (build counters persist)."""
        self.range_queries = 0
        self.distance_computations = 0
        self.node_accesses = 0
        self.extra = {}

    def snapshot(self) -> "IndexStats":
        """An independent copy of the current counters."""
        return IndexStats(
            range_queries=self.range_queries,
            distance_computations=self.distance_computations,
            node_accesses=self.node_accesses,
            build_node_accesses=self.build_node_accesses,
            extra=dict(self.extra),
        )

    def to_dict(self) -> dict:
        """Plain-dict form for the result wire format (JSON-safe for
        JSON-safe ``extra``)."""
        return {
            "range_queries": int(self.range_queries),
            "distance_computations": int(self.distance_computations),
            "node_accesses": int(self.node_accesses),
            "build_node_accesses": int(self.build_node_accesses),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IndexStats":
        return cls(
            range_queries=int(payload.get("range_queries", 0)),
            distance_computations=int(payload.get("distance_computations", 0)),
            node_accesses=int(payload.get("node_accesses", 0)),
            build_node_accesses=int(payload.get("build_node_accesses", 0)),
            extra=dict(payload.get("extra", {})),
        )

    def __sub__(self, other: "IndexStats") -> "IndexStats":
        return IndexStats(
            range_queries=self.range_queries - other.range_queries,
            distance_computations=self.distance_computations
            - other.distance_computations,
            node_accesses=self.node_accesses - other.node_accesses,
            build_node_accesses=self.build_node_accesses - other.build_node_accesses,
            extra=dict(self.extra),
        )


class NeighborIndex(abc.ABC):
    """Abstract base for all neighbor indexes.

    Concrete indexes store an immutable ``(n, d)`` point matrix and a
    metric, expose range queries by object id or by free point, and keep
    an :class:`IndexStats` counter.
    """

    def __init__(self, points: np.ndarray, metric) -> None:
        points = np.asarray(points)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-d, got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("cannot index an empty point set")
        self.points = points
        self.metric: Metric = get_metric(metric)
        self.stats = IndexStats()
        #: CSR-engine gate: "auto" | True | False (see module docstring).
        self.accelerate = "auto"
        #: Radius-keyed adjacency store.  Unbounded by default (one-shot
        #: requests build one radius); sessions install a bounded LRU
        #: via :meth:`set_adjacency_cache`.
        self._csr_cache = AdjacencyCache()

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed objects."""
        return self.points.shape[0]

    def ids(self) -> Iterable[int]:
        """Object ids in the index's natural iteration order.

        This order is what the paper means by "arbitrary" selection in
        Basic-DisC; the M-tree overrides it with left-to-right leaf
        order to exploit locality (Section 5.1).
        """
        return range(self.n)

    @abc.abstractmethod
    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        """Ids of all objects within ``radius`` of the free ``point``."""

    def range_query(
        self, center_id: int, radius: float, *, include_self: bool = False
    ) -> List[int]:
        """The neighborhood ``N_r(center_id)`` (or ``N+_r`` with self).

        Subclasses may override for id-aware optimisations (the M-tree's
        bottom-up queries start from the leaf containing the object).
        """
        result = self.range_query_point(self.points[center_id], radius)
        if include_self:
            if center_id not in result:
                result.append(center_id)
            return result
        return [other for other in result if other != center_id]

    # ------------------------------------------------------------------
    # Batched queries and the CSR engine
    # ------------------------------------------------------------------
    def range_query_batch(
        self, ids: Sequence[int], radius: float, *, include_self: bool = False
    ) -> List[np.ndarray]:
        """``N_r`` for many centers in one call.

        The base implementation loops :meth:`range_query` (so tree
        indexes keep their exact per-query cost accounting); the simple
        indexes override it with fully vectorised versions.  Returns
        one int array per requested id with the center excluded; the
        vectorised overrides return neighbors ascending, while this
        default keeps :meth:`range_query`'s native order (e.g. M-tree
        traversal order).  With ``include_self`` the center id is also
        present (position unspecified — cached paths append it,
        mirroring :meth:`range_query`).
        """
        return [
            np.asarray(
                self.range_query(int(i), radius, include_self=include_self),
                dtype=np.int64,
            )
            for i in ids
        ]

    def csr_neighborhood(self, radius: float, *, build: bool = True):
        """The materialised adjacency for ``radius``, or None.

        Returns a :class:`~repro.graph.csr.CSRNeighborhood` (or a
        :class:`~repro.graph.blocked.BlockedNeighborhood` when the
        builder judged the dense cell pairs worth keeping implicit —
        same primitives, same selections), or None when acceleration is
        disabled or the index does not materialise adjacency (the
        M-tree).  With ``build=False`` only an already-cached adjacency
        is returned — callers that merely *prefer* the fast path use
        this to avoid paying a build for a handful of queries.  Built
        adjacencies are cached per radius.
        """
        if self.accelerate is False:
            return None
        key = float(radius)
        if not build:
            return self._csr_cache.peek(key)
        csr = self._csr_cache.get(key)
        if csr is None:
            try:
                csr = self._build_csr(key)
            except BaseException as exc:
                # A claimed-but-failed build must release the slot, or
                # coalesced readers of a shared cache wait out their
                # timeout for a value that will never arrive.  ``fail``
                # carries the exception so a shared cache can hand it
                # to every waiter and feed its circuit breaker.
                self._csr_cache.fail(key, exc)
                raise
            if csr is not None:
                self._csr_cache.put(key, csr)
            else:
                self._csr_cache.abandon(key)
                if self.accelerate is True:
                    raise RuntimeError(
                        f"{type(self).__name__} cannot materialise a CSR "
                        "neighborhood but accelerate=True insists on it; use "
                        'accelerate="auto" to allow the per-query fallback'
                    )
        return csr

    def _build_csr(self, radius: float):
        """Materialise the fixed-radius adjacency (None = unsupported).

        May return a flat :class:`~repro.graph.csr.CSRNeighborhood` or
        an implicit :class:`~repro.graph.blocked.BlockedNeighborhood`.
        """
        return None

    @property
    def adjacency_cache(self) -> AdjacencyCache:
        """The radius-keyed adjacency store (see :meth:`csr_neighborhood`)."""
        return self._csr_cache

    def set_adjacency_cache(self, cache: AdjacencyCache) -> None:
        """Install a replacement adjacency cache (e.g. a bounded LRU).

        Entries already built are carried over (then the new cache's
        budgets apply), so swapping caches never discards a paid-for
        adjacency prematurely.
        """
        cache.adopt(self._csr_cache)
        self._csr_cache = cache

    # ------------------------------------------------------------------
    # Bulk helpers used by the greedy heuristics
    # ------------------------------------------------------------------
    def neighborhood_sizes(self, radius: float) -> np.ndarray:
        """``|N_r(p_i)|`` for every object (self excluded).

        Greedy-DisC seeds its priority structure ``L'`` with these; the
        M-tree computes them during construction (Section 5.1), other
        indexes on demand — from the CSR degrees when the engine is
        available, else one range query per object.
        """
        csr = self.csr_neighborhood(radius)
        if csr is not None:
            return csr.degrees.astype(np.int64)
        sizes = np.empty(self.n, dtype=np.int64)
        for i in range(self.n):
            sizes[i] = len(self.range_query(i, radius))
        return sizes

    def distance(self, a: int, b: int) -> float:
        """Metric distance between two indexed objects."""
        self.stats.distance_computations += 1
        return self.metric.distance(self.points[a], self.points[b])

    # ------------------------------------------------------------------
    # Coloring hooks (no-ops for simple indexes)
    # ------------------------------------------------------------------
    @property
    def supports_pruning(self) -> bool:
        """Whether the index exploits grey-object pruning (Section 5.1)."""
        return False

    def attach_coloring(self, coloring) -> None:
        """Subscribe to color changes; simple indexes ignore them."""

    def detach_coloring(self) -> None:
        """Drop any coloring subscription."""

    # ------------------------------------------------------------------
    def validate_ids(self, ids: Sequence[int]) -> None:
        """Raise ``IndexError`` if any id is out of range (fail fast)."""
        arr = ids if isinstance(ids, np.ndarray) else np.asarray(list(ids))
        if arr.size == 0:
            return
        bad = (arr < 0) | (arr >= self.n)
        if bad.any():
            offender = arr[bad].flat[0]
            raise IndexError(
                f"object id {offender} out of range [0, {self.n})"
            )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, dim={self.points.shape[1]}, "
            f"metric={self.metric.name})"
        )

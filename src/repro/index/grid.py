"""Uniform-grid neighbor index for Minkowski-type metrics.

A middle ground between the brute-force oracle and the M-tree: points in
``[0, 1]^d`` are bucketed into a uniform grid of cells, and a range query
scans only the cells intersecting the query ball's bounding box.  For the
low-dimensional numeric datasets of the paper this is very fast, which
makes it the default engine for *solution-size* experiments (Table 3)
where node accesses are not being measured.

Not applicable to the Hamming metric (category codes are not coordinates
in a box); constructing a :class:`GridIndex` with it raises.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.distance import HammingMetric
from repro.index.base import NeighborIndex

__all__ = ["GridIndex"]


class GridIndex(NeighborIndex):
    """Uniform grid over the bounding box of the data.

    Parameters
    ----------
    cell_size:
        Edge length of each grid cell.  Pick roughly the query radius:
        smaller cells mean more cells to enumerate, larger cells mean
        more candidates per cell.
    """

    def __init__(self, points: np.ndarray, metric, cell_size: float = 0.05):
        super().__init__(points, metric)
        if isinstance(self.metric, HammingMetric):
            raise TypeError("GridIndex requires coordinate geometry; Hamming is not supported")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._origin = self.points.min(axis=0)
        self._cells: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
        keys = np.floor((self.points - self._origin) / self.cell_size).astype(int)
        for object_id, key in enumerate(keys):
            self._cells[tuple(key)].append(object_id)
        self._keys = keys

    def _cells_in_range(self, point: np.ndarray, radius: float):
        low = np.floor((point - radius - self._origin) / self.cell_size).astype(int)
        high = np.floor((point + radius - self._origin) / self.cell_size).astype(int)
        ranges = [range(int(lo), int(hi) + 1) for lo, hi in zip(low, high)]
        return itertools.product(*ranges)

    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        self.stats.range_queries += 1
        point = np.asarray(point, dtype=float)
        candidates: List[int] = []
        for key in self._cells_in_range(point, radius):
            bucket = self._cells.get(key)
            if bucket:
                candidates.extend(bucket)
        if not candidates:
            return []
        candidate_ids = np.asarray(candidates, dtype=int)
        distances = self.metric.to_point(self.points[candidate_ids], point)
        self.stats.distance_computations += len(candidate_ids)
        return [int(i) for i in candidate_ids[distances <= radius]]

"""Uniform-grid neighbor index for Minkowski-type metrics.

A middle ground between the brute-force oracle and the M-tree: points in
``[0, 1]^d`` are bucketed into a uniform grid of cells, and a range query
scans only the cells intersecting the query ball's bounding box.  For the
low-dimensional numeric datasets of the paper this is very fast, which
makes it the default engine for *solution-size* experiments (Table 3)
where node accesses are not being measured.

Not applicable to the Hamming metric (category codes are not coordinates
in a box); constructing a :class:`GridIndex` with it raises.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.distance import HammingMetric
from repro.engines.registry import EngineCapabilities, register_engine
from repro.graph.blocked import build_grid_auto
from repro.graph.csr import build_csr_pairwise, group_points_by_cell
from repro.index.base import NeighborIndex

__all__ = ["GridIndex"]


@register_engine(EngineCapabilities(
    name="grid",
    description="uniform grid with cell-pair-pruned CSR/blocked builds "
    "(the wall-clock champion when cell_size ~ radius)",
    metrics="minkowski",
    supports_csr=True,
    supports_blocked=True,
    cost_fidelity="counters",
    radius_option="cell_size",
    auto_priority=2,
))
class GridIndex(NeighborIndex):
    """Uniform grid over the bounding box of the data.

    Parameters
    ----------
    cell_size:
        Edge length of each grid cell.  Pick roughly the query radius:
        smaller cells mean more cells to enumerate, larger cells mean
        more candidates per cell.
    """

    def __init__(self, points: np.ndarray, metric, cell_size: float = 0.05):
        super().__init__(points, metric)
        if isinstance(self.metric, HammingMetric):
            raise TypeError("GridIndex requires coordinate geometry; Hamming is not supported")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._origin = self.points.min(axis=0)
        self._cells: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
        keys = np.floor((self.points - self._origin) / self.cell_size).astype(int)
        for object_id, key in enumerate(keys):
            self._cells[tuple(key)].append(object_id)
        self._keys = keys

    def _cells_in_range(self, point: np.ndarray, radius: float):
        low = np.floor((point - radius - self._origin) / self.cell_size).astype(int)
        high = np.floor((point + radius - self._origin) / self.cell_size).astype(int)
        ranges = [range(int(lo), int(hi) + 1) for lo, hi in zip(low, high)]
        return itertools.product(*ranges)

    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        self.stats.range_queries += 1
        point = np.asarray(point, dtype=float)
        candidates: List[int] = []
        for key in self._cells_in_range(point, radius):
            bucket = self._cells.get(key)
            if bucket:
                candidates.extend(bucket)
        if not candidates:
            return []
        candidate_ids = np.asarray(candidates, dtype=int)
        distances = self.metric.to_point(self.points[candidate_ids], point)
        self.stats.distance_computations += len(candidate_ids)
        return [int(i) for i in candidate_ids[distances <= radius]]

    # ------------------------------------------------------------------
    # Cell-blocked batch machinery for range_query_batch: all query
    # points in one cell see the same candidate cells, so one pairwise
    # block serves the whole cell.
    # ------------------------------------------------------------------
    def _cell_candidates(self, key: Tuple[int, ...], radius: float) -> np.ndarray:
        """Candidate ids for any query point falling in cell ``key``."""
        key_arr = np.asarray(key)
        low = self._origin + key_arr * self.cell_size
        high = low + self.cell_size
        lo_key = np.floor((low - radius - self._origin) / self.cell_size).astype(int)
        hi_key = np.floor((high + radius - self._origin) / self.cell_size).astype(int)
        candidates: List[int] = []
        for neighbor_key in itertools.product(
            *[range(int(lo), int(hi) + 1) for lo, hi in zip(lo_key, hi_key)]
        ):
            bucket = self._cells.get(neighbor_key)
            if bucket:
                candidates.extend(bucket)
        return np.sort(np.asarray(candidates, dtype=np.int64))

    def _cell_blocks(self, query_ids: np.ndarray, radius: float):
        """Yield ``(ids, candidates, distance_block)`` per occupied cell."""
        for positions in group_points_by_cell(self._keys[query_ids]):
            group = query_ids[positions]
            candidates = self._cell_candidates(tuple(self._keys[group[0]]), radius)
            block = self.metric.pairwise(self.points[group], self.points[candidates])
            self.stats.distance_computations += block.size
            yield group, candidates, block

    def range_query_batch(
        self, ids: Sequence[int], radius: float, *, include_self: bool = False
    ) -> List[np.ndarray]:
        """Vectorised multi-center queries, one pairwise block per cell."""
        ids = np.asarray(ids, dtype=np.int64)
        radius = float(radius)
        self.stats.range_queries += ids.size
        csr = self.csr_neighborhood(radius, build=False)
        results: Dict[int, np.ndarray] = {}
        if csr is not None:
            for i in ids:
                results[int(i)] = csr.neighbors(i).astype(np.int64)
        elif ids.size:
            for group, candidates, block in self._cell_blocks(ids, radius):
                for local, center in enumerate(group):
                    hits = candidates[block[local] <= radius]
                    results[int(center)] = np.sort(hits[hits != center])
        out = []
        for i in ids:
            neighbors = results[int(i)]
            if include_self:
                neighbors = np.append(neighbors, np.int64(i))
            out.append(neighbors)
        return out

    def _build_csr(self, radius: float):
        """Delegate to the shared grid-binned builder (cells sized by
        the radius, not this index's ``cell_size`` — the adjacency is
        identical and radius-sized cells bound candidate fan-out).

        :func:`~repro.graph.blocked.build_grid_auto` upgrades the
        result to a :class:`~repro.graph.blocked.BlockedNeighborhood`
        when the provably-dense cell pairs carry enough of the edge
        mass (clustered data at scale); selections are byte-identical
        either way.  Sound for the same metrics this index accepts:
        Minkowski-type coordinate geometry (Hamming is rejected at
        construction).
        """
        if radius <= 0:
            return build_csr_pairwise(self.points, self.metric, radius, stats=self.stats)
        return build_grid_auto(self.points, self.metric, radius, stats=self.stats)

"""Brute-force neighbor index — the semantic oracle.

Linear-scan range queries with NumPy-vectorised distance evaluation.  It
is exact for every metric, has no tuning knobs, and therefore serves as
the correctness oracle for the M-tree in the test suite.  For repeated
queries over the same radius (the common pattern in DisC heuristics) an
optional materialised neighbor cache turns queries into list lookups.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.index.base import NeighborIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(NeighborIndex):
    """Exact linear-scan index.

    Parameters
    ----------
    points, metric:
        See :class:`repro.index.base.NeighborIndex`.
    cache_radius:
        If given, precompute all neighbor lists for this radius; queries
        at exactly this radius become O(1) lookups.  DisC heuristics
        query one fixed radius thousands of times, so this is the main
        lever for making the oracle usable at paper scale.
    """

    def __init__(self, points: np.ndarray, metric, cache_radius: Optional[float] = None):
        super().__init__(points, metric)
        self._neighbor_cache: Dict[float, List[List[int]]] = {}
        if cache_radius is not None:
            self.precompute(cache_radius)

    def precompute(self, radius: float) -> None:
        """Materialise neighbor lists for ``radius``.

        Chunked over rows to keep memory at O(chunk * n) instead of the
        full n^2 distance matrix.
        """
        if radius in self._neighbor_cache:
            return
        n = self.n
        lists: List[List[int]] = []
        chunk = max(1, int(4_000_000 / max(n, 1)))
        for start in range(0, n, chunk):
            block = self.metric.pairwise(self.points[start : start + chunk], self.points)
            self.stats.distance_computations += block.size
            for local, row in enumerate(block):
                i = start + local
                hits = np.nonzero(row <= radius)[0]
                lists.append([int(j) for j in hits if j != i])
        self._neighbor_cache[radius] = lists

    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        self.stats.range_queries += 1
        distances = self.metric.to_point(self.points, point)
        self.stats.distance_computations += self.n
        return [int(i) for i in np.nonzero(distances <= radius)[0]]

    def range_query(
        self, center_id: int, radius: float, *, include_self: bool = False
    ) -> List[int]:
        cached = self._neighbor_cache.get(radius)
        if cached is not None:
            self.stats.range_queries += 1
            neighbors = list(cached[center_id])
            if include_self:
                neighbors.append(center_id)
            return neighbors
        return super().range_query(center_id, radius, include_self=include_self)

    def neighborhood_sizes(self, radius: float) -> np.ndarray:
        self.precompute(radius)
        return np.array(
            [len(neighbors) for neighbors in self._neighbor_cache[radius]],
            dtype=np.int64,
        )

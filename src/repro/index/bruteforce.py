"""Brute-force neighbor index — the semantic oracle.

Linear-scan range queries with NumPy-vectorised distance evaluation.  It
is exact for every metric, has no tuning knobs, and therefore serves as
the correctness oracle for the M-tree in the test suite.  For repeated
queries over the same radius (the common pattern in DisC heuristics) the
index materialises the whole adjacency once: as a
:class:`~repro.graph.csr.CSRNeighborhood` when acceleration is on (the
default), or as per-object Python lists on the legacy path
(``accelerate=False``), which is kept as the reference implementation
for parity testing and benchmarking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.distance import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)
from repro.engines.registry import EngineCapabilities, register_engine
from repro.graph.blocked import build_grid_auto
from repro.graph.csr import build_csr_pairwise, pairwise_row_chunk
from repro.index.base import NeighborIndex, validate_accelerate

_MINKOWSKI_FAMILY = (
    EuclideanMetric,
    ManhattanMetric,
    ChebyshevMetric,
    MinkowskiMetric,
)

#: Below this cardinality the full chunked pairwise build is already
#: fast; above it the grid-binned builder wins for Lp metrics.
_GRID_BUILD_MIN_N = 2048

#: Grid binning enumerates 3^d neighbor cells per cell — past a few
#: dimensions the full pairwise sweep is the better exact strategy.
_GRID_BUILD_MAX_DIM = 4

__all__ = ["BruteForceIndex"]


@register_engine(EngineCapabilities(
    name="brute",
    description="exact linear scan; works for any metric (the oracle)",
    metrics="any",
    supports_csr=True,
    supports_blocked=True,  # grid-binned Lp builds upgrade; others stay flat
    cost_fidelity="counters",
))
class BruteForceIndex(NeighborIndex):
    """Exact linear-scan index.

    Parameters
    ----------
    points, metric:
        See :class:`repro.index.base.NeighborIndex`.
    cache_radius:
        If given, precompute the full adjacency for this radius; queries
        at exactly this radius become O(1) lookups.  DisC heuristics
        query one fixed radius thousands of times, so this is the main
        lever for making the oracle usable at paper scale.
    accelerate:
        CSR-engine gate (``"auto"`` | ``True`` | ``False``); see
        :class:`~repro.index.base.NeighborIndex`.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric,
        cache_radius: Optional[float] = None,
        accelerate="auto",
    ):
        super().__init__(points, metric)
        self.accelerate = validate_accelerate(accelerate)
        self._neighbor_cache: Dict[float, List[List[int]]] = {}
        if cache_radius is not None:
            self.precompute(cache_radius)

    def _build_csr(self, radius: float):
        """Adjacency build: grid-binned candidate generation for Lp
        metrics at scale (exactly the same neighbor sets, near-linear
        work at fixed density), chunked full pairwise otherwise.  The
        grid path auto-upgrades to the implicit blocked adjacency on
        dense-pair-heavy data (see :mod:`repro.graph.blocked`)."""
        if (
            radius > 0
            and isinstance(self.metric, _MINKOWSKI_FAMILY)
            and self.n >= _GRID_BUILD_MIN_N
            and self.points.shape[1] <= _GRID_BUILD_MAX_DIM
        ):
            return build_grid_auto(self.points, self.metric, radius, stats=self.stats)
        return build_csr_pairwise(
            self.points, self.metric, radius, stats=self.stats
        )

    def precompute(self, radius: float) -> None:
        """Materialise the adjacency for ``radius``.

        On the accelerated path this builds (and caches) the CSR
        engine.  The legacy path keeps per-object Python lists; its
        pairwise blocks are chunked by cardinality *and* dimensionality
        (a ``(chunk, n)`` float64 block plus the metric's ``(chunk, n,
        d)`` broadcast intermediate), where the old ``4_000_000 / n``
        rule ignored ``d`` and could triple peak memory on wide data.
        Distance computations are charged only when a radius is
        actually computed, never for cache hits.
        """
        radius = float(radius)
        if self.csr_neighborhood(radius, build=False) is not None:
            return
        if self.accelerate is not False:
            self.csr_neighborhood(radius)
            return
        if radius in self._neighbor_cache:
            return
        n, d = self.n, self.points.shape[1]
        lists: List[List[int]] = []
        chunk = pairwise_row_chunk(n, d)
        for start in range(0, n, chunk):
            block = self.metric.pairwise(self.points[start : start + chunk], self.points)
            self.stats.distance_computations += block.size
            for local, row in enumerate(block):
                i = start + local
                hits = np.nonzero(row <= radius)[0]
                lists.append([int(j) for j in hits if j != i])
        self._neighbor_cache[radius] = lists

    def _cached_neighbors(self, radius: float, center_id: int) -> Optional[List[int]]:
        """Neighbor list at ``radius`` from either cache, else None."""
        csr = self.csr_neighborhood(radius, build=False)
        if csr is not None:
            return csr.neighbors(center_id).tolist()
        cached = self._neighbor_cache.get(radius)
        if cached is not None:
            return list(cached[center_id])
        return None

    def range_query_point(self, point: np.ndarray, radius: float) -> List[int]:
        self.stats.range_queries += 1
        distances = self.metric.to_point(self.points, point)
        self.stats.distance_computations += self.n
        return [int(i) for i in np.nonzero(distances <= radius)[0]]

    def range_query(
        self, center_id: int, radius: float, *, include_self: bool = False
    ) -> List[int]:
        neighbors = self._cached_neighbors(float(radius), center_id)
        if neighbors is not None:
            self.stats.range_queries += 1
            if include_self:
                neighbors.append(center_id)
            return neighbors
        return super().range_query(center_id, radius, include_self=include_self)

    def range_query_batch(
        self, ids: Sequence[int], radius: float, *, include_self: bool = False
    ) -> List[np.ndarray]:
        """Vectorised multi-center queries: one chunked pairwise pass.

        Cache hits (CSR or legacy lists) are O(1) slices; misses share
        one distance matrix over the requested rows instead of one
        linear scan per center.
        """
        ids = np.asarray(ids, dtype=np.int64)
        radius = float(radius)
        self.stats.range_queries += ids.size
        csr = self.csr_neighborhood(radius, build=False)
        if csr is not None:
            return [
                self._with_self(csr.neighbors(i).astype(np.int64), i, include_self)
                for i in ids
            ]
        cached = self._neighbor_cache.get(radius)
        if cached is not None:
            return [
                self._with_self(np.asarray(cached[i], dtype=np.int64), i, include_self)
                for i in ids
            ]
        out: List[np.ndarray] = []
        chunk = pairwise_row_chunk(self.n, self.points.shape[1])
        for start in range(0, ids.size, chunk):
            batch = ids[start : start + chunk]
            block = self.metric.pairwise(self.points[batch], self.points)
            self.stats.distance_computations += block.size
            for local, center in enumerate(batch):
                hits = np.nonzero(block[local] <= radius)[0]
                if not include_self:
                    hits = hits[hits != center]
                out.append(hits.astype(np.int64))
        return out

    @staticmethod
    def _with_self(
        neighbors: np.ndarray, center_id: int, include_self: bool
    ) -> np.ndarray:
        if not include_self:
            return neighbors
        return np.append(neighbors, np.int64(center_id))

    def neighborhood_sizes(self, radius: float) -> np.ndarray:
        csr = self.csr_neighborhood(float(radius))
        if csr is not None:
            return csr.degrees.astype(np.int64)
        self.precompute(float(radius))
        return np.array(
            [len(neighbors) for neighbors in self._neighbor_cache[float(radius)]],
            dtype=np.int64,
        )

"""Radius-keyed LRU cache for materialised adjacencies.

Every :class:`~repro.index.base.NeighborIndex` keeps its built
CSR/blocked adjacencies in an :class:`AdjacencyCache`.  The default is
unbounded (one-shot requests build at most one radius, so there is
nothing to evict); a :class:`~repro.api.DiscSession` installs a bounded
instance so interactive zoom/select sequences reuse the adjacency at
repeated radii while the total footprint stays capped.

Reuse is sound because the adjacencies are immutable once built
(:mod:`repro.graph.csr`: algorithms carry their mutable state — colors,
counts — in separate dense arrays), so a cache hit feeds a selection
byte-identical to a fresh build.

Eviction is LRU over both an entry budget and an optional byte budget;
entry sizes come from the ``nbytes`` hook on
:class:`~repro.graph.csr.CSRNeighborhood` and
:class:`~repro.graph.blocked.BlockedNeighborhood`.  The most recently
inserted entry is never evicted, so a single adjacency larger than the
byte budget still serves its own request.

All mutating operations (and the counter reads of :meth:`info`) take an
internal re-entrant lock, so a cache may be shared by concurrent
sessions: the serving layer (:mod:`repro.service`) runs selections on a
thread pool and its ``/stats`` endpoint snapshots counters while
requests are in flight.

Locking convention (enforced by ``repro lint``, rule
``guarded-attribute``): every class sharing mutable state across
threads declares a ``_GUARDED_BY`` class attribute mapping attribute
name to the lock expression that must be held to mutate it (or the
sentinel ``"event-loop"`` for asyncio-owned state).  Helpers that run
with the lock already held say so in their docstring ("Caller holds
``self._lock``."); the linter accepts that contract and flags any new
call site that mutates outside a ``with``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.obs import metrics as obs_metrics

__all__ = ["AdjacencyCache"]


def _entry_bytes(value) -> int:
    return int(getattr(value, "nbytes", 0))


class AdjacencyCache:
    """LRU mapping ``radius -> adjacency`` with hit/miss accounting.

    Parameters
    ----------
    max_entries:
        Maximum number of cached radii (None = unbounded).
    max_bytes:
        Soft byte budget over all cached adjacencies (None = unbounded);
        sizes come from each entry's ``nbytes``.
    """

    #: Lock discipline, mechanically enforced by `repro lint`.
    _GUARDED_BY = {
        "_entries": "self._lock",
        "hits": "self._lock",
        "misses": "self._lock",
        "evictions": "self._lock",
    }

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[float, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._m_lookups = obs_metrics.registry().counter(
            "repro_session_cache_lookups_total",
            "Per-session adjacency cache lookups by outcome.",
            ("outcome",),
        )

    # ------------------------------------------------------------------
    def get(self, key: float):
        """The cached adjacency for ``key``, or None (counts hit/miss)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                value = None
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        self._m_lookups.inc(outcome="miss" if value is None else "hit")
        return value

    def peek(self, key: float):
        """Like :meth:`get`, but promises no follow-up :meth:`put`.

        Identical for the private LRU; the shared serving cache
        overrides it to answer without claiming a single-flight build
        slot (``csr_neighborhood(..., build=False)`` goes through
        here).
        """
        return self.get(key)

    def put(self, key: float, value) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past budget."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict()

    def abandon(self, key: float) -> None:
        """A miss that will never be followed by :meth:`put` (no-op here).

        The shared serving cache single-flights builds: a miss claims a
        build slot that concurrent readers wait on, so a build that
        produces nothing (or raises) must release it.  The private LRU
        has no waiters; the hook exists so ``csr_neighborhood`` can
        treat both caches uniformly.
        """

    def fail(self, key: float, exc: BaseException) -> None:
        """A claimed build raised ``exc`` and will never :meth:`put`.

        The private LRU just releases the (no-op) slot; the shared
        serving cache overrides this to propagate the failure to every
        coalesced waiter and to feed its circuit breaker — which is why
        the exception travels with the release instead of callers
        calling plain :meth:`abandon`.
        """
        self.abandon(key)

    def _evict(self) -> None:
        with self._lock:
            while len(self._entries) > 1 and (
                (self.max_entries is not None and len(self._entries) > self.max_entries)
                or (self.max_bytes is not None and self.total_bytes > self.max_bytes)
            ):
                self._entries.popitem(last=False)
                self.evictions += 1

    def adopt(self, other: "AdjacencyCache") -> None:
        """Take over another cache's entries (oldest first), then apply
        this cache's budgets.  Used when a session installs a bounded
        cache on an index that may already hold adjacencies."""
        with self._lock, other._lock:
            for key, value in other._entries.items():
                self._entries[key] = value
                self._entries.move_to_end(key)
            self._evict()

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(_entry_bytes(v) for v in self._entries.values())

    def info(self) -> dict:
        """Counters + footprint snapshot (plain JSON-serialisable dict)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "radii": [float(k) for k in self._entries],
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bytes": self.total_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }

    def cache_info(self) -> dict:
        """Alias of :meth:`info` matching the session/service vocabulary
        (``DiscSession.cache_info`` and the ``/stats`` endpoint both
        serialise this dict verbatim)."""
        return self.info()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AdjacencyCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )

"""Engine registry: capability descriptors + the data-driven ``auto`` policy.

Every neighbor-index engine self-registers here with an
:class:`EngineCapabilities` descriptor stating what it can do — which
metric family it indexes, whether it can materialise a CSR adjacency
(the ``accelerate`` engine), whether its grid plan upgrades to the
implicit blocked adjacency, and what cost-accounting fidelity it
offers.  The public request pipeline (:mod:`repro.requests`,
:mod:`repro.api`) resolves engine names, validates engine options and
performs ``auto`` selection *through the registry*, so

* adding an engine is one decorator on its class — no edits to
  ``api.py`` dispatch tables;
* unknown engines / unknown options fail with messages derived from
  the registered capabilities and constructor signatures;
* ``auto`` is a policy over capabilities and workload shape
  (cardinality, metric family, radius hint) instead of a hard-coded
  "auto means M-tree".

The registry holds *classes*, not instances; engine construction goes
through :meth:`EngineEntry.create`, which also applies the
``accelerate`` gate uniformly.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.distance import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)

__all__ = [
    "EngineCapabilities",
    "EngineEntry",
    "EngineRegistry",
    "register_engine",
    "registry",
    "AUTO_FIDELITY_MAX_N",
]

#: ``auto`` keeps the paper's M-tree substrate (exact node-access
#: accounting) up to this cardinality; beyond it the policy switches to
#: a CSR-capable engine — the M-tree's per-query path is infeasible at
#: 100k+ (see ROADMAP perf trajectory).
AUTO_FIDELITY_MAX_N = 10_000

_MINKOWSKI_FAMILY = (
    EuclideanMetric,
    ManhattanMetric,
    ChebyshevMetric,
    MinkowskiMetric,
)

#: Modules whose import registers the built-in engines.  Resolved
#: lazily on first lookup so the registry module itself stays
#: dependency-free (the index modules import *us* for the decorator).
_BUILTIN_MODULES = (
    "repro.index.bruteforce",
    "repro.index.grid",
    "repro.index.kdtree",
    "repro.mtree.index",
)


@dataclass(frozen=True)
class EngineCapabilities:
    """What one engine can do — the data the ``auto`` policy reads.

    Attributes
    ----------
    name:
        Registry key (``"brute"``, ``"grid"``, ``"kdtree"``,
        ``"mtree"``).
    description:
        One-line human summary used in error messages and ``info``.
    metrics:
        ``"any"`` or ``"minkowski"`` — the metric family the engine can
        index (the grid and KD-tree need coordinate geometry).
    supports_csr:
        Whether the engine can materialise the fixed-radius adjacency
        (the ``accelerate`` CSR engine of :mod:`repro.graph.csr`).
    supports_blocked:
        Whether its CSR build upgrades to the implicit dense-block
        adjacency of :mod:`repro.graph.blocked` on clustered data.
    cost_fidelity:
        ``"node-access"`` (the paper's exact M-tree accounting),
        ``"counters"`` (range-query/distance counters only) or
        ``"none"`` (no traversal counts — SciPy KD-tree).
    radius_option:
        Name of a constructor option the ``auto`` policy should seed
        with the request radius when one is known (the grid's
        ``cell_size``), or None.
    csr_unsupported_reason:
        For ``supports_csr=False`` engines: the message explaining why
        ``accelerate=True`` is rejected.
    auto_priority:
        Last-resort tie-breaker among equally-capable candidates on the
        ``auto`` scale path (higher wins); lets a metric-restricted
        specialist outrank the always-applicable oracle.
    """

    name: str
    description: str
    metrics: str = "any"
    supports_csr: bool = False
    supports_blocked: bool = False
    cost_fidelity: str = "counters"
    radius_option: Optional[str] = None
    csr_unsupported_reason: Optional[str] = None
    auto_priority: int = 0


@dataclass
class EngineEntry:
    """A registered engine: its class plus capabilities."""

    capabilities: EngineCapabilities
    cls: type
    _valid_options: Optional[frozenset] = field(default=None, repr=False)
    _takes_accelerate: Optional[bool] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.capabilities.name

    def _signature_options(self) -> Tuple[frozenset, bool]:
        params = inspect.signature(self.cls.__init__).parameters
        names = frozenset(
            name
            for name, param in params.items()
            if name not in ("self", "points", "metric")
            and param.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        )
        return names - {"accelerate"}, "accelerate" in names

    @property
    def valid_options(self) -> frozenset:
        """Constructor keyword options (``accelerate`` handled apart)."""
        if self._valid_options is None:
            self._valid_options, self._takes_accelerate = self._signature_options()
        return self._valid_options

    @property
    def takes_accelerate(self) -> bool:
        """Whether the constructor accepts ``accelerate`` directly."""
        if self._takes_accelerate is None:
            self._valid_options, self._takes_accelerate = self._signature_options()
        return self._takes_accelerate

    def supports_metric(self, metric) -> bool:
        if self.capabilities.metrics == "any":
            return True
        return isinstance(metric, _MINKOWSKI_FAMILY)

    def validate_options(self, options: dict) -> None:
        """Reject unknown constructor options, naming the valid ones."""
        unknown = sorted(set(options) - self.valid_options)
        if unknown:
            raise ValueError(
                f"unknown engine option(s) {', '.join(map(repr, unknown))} for "
                f"engine {self.name!r} ({self.cls.__name__}); valid options: "
                f"{', '.join(sorted(self.valid_options | {'accelerate'}))}"
            )

    def validate_accelerate(self, accelerate) -> None:
        """Capability check: ``accelerate=True`` needs a CSR builder."""
        if accelerate is True and not self.capabilities.supports_csr:
            raise ValueError(
                self.capabilities.csr_unsupported_reason
                or f"engine {self.name!r} cannot materialise a CSR adjacency; "
                'use accelerate="auto" or pick a CSR-capable engine'
            )

    def create(self, points, metric, accelerate, options: dict):
        """Construct the index with the ``accelerate`` gate applied.

        Engines whose constructor takes ``accelerate`` (the brute-force
        index, whose ctor-time ``cache_radius`` precompute must land on
        the requested path) receive it directly; everything else gets
        the attribute set after construction.
        """
        self.validate_options(options)
        self.validate_accelerate(accelerate)
        if self.takes_accelerate:
            index = self.cls(points, metric, accelerate=accelerate, **options)
        else:
            index = self.cls(points, metric, **options)
        index.accelerate = accelerate
        return index


class EngineRegistry:
    """Name → :class:`EngineEntry` mapping with the ``auto`` policy."""

    def __init__(self) -> None:
        self._entries: Dict[str, EngineEntry] = {}
        self._builtins_loaded = False

    # ------------------------------------------------------------------
    def register(self, capabilities: EngineCapabilities):
        """Class decorator: ``@registry.register(EngineCapabilities(...))``."""

        def decorator(cls):
            name = capabilities.name.lower()
            self._entries[name] = EngineEntry(capabilities=capabilities, cls=cls)
            return cls

        return decorator

    def _ensure_builtins(self) -> None:
        if not self._builtins_loaded:
            self._builtins_loaded = True
            for module in _BUILTIN_MODULES:
                importlib.import_module(module)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Registered engine names, sorted."""
        self._ensure_builtins()
        return sorted(self._entries)

    def entries(self) -> List[EngineEntry]:
        self._ensure_builtins()
        return [self._entries[name] for name in sorted(self._entries)]

    def get(self, name: str) -> EngineEntry:
        """Resolve a concrete engine name (``auto`` is a policy, not an
        entry — see :meth:`resolve`)."""
        self._ensure_builtins()
        try:
            return self._entries[name.lower()]
        except KeyError:
            raise ValueError(
                f"unknown engine {name!r}; registered engines: "
                f"{', '.join(['auto'] + sorted(self._entries))}"
            ) from None

    # ------------------------------------------------------------------
    # The auto policy
    # ------------------------------------------------------------------
    def _auto_candidates(self, metric, options: dict) -> List[EngineEntry]:
        """Engines compatible with the metric family and option names."""
        self._ensure_builtins()
        option_names = set(options)
        out = [
            entry
            for entry in self.entries()
            if (metric is None or entry.supports_metric(metric))
            and option_names <= entry.valid_options
        ]
        if not out:
            per_engine = "; ".join(
                f"{entry.name} ({entry.cls.__name__}): "
                f"{', '.join(sorted(entry.valid_options | {'accelerate'}))}"
                for entry in self.entries()
            )
            metric_note = (
                f" for metric {getattr(metric, 'name', metric)!r}"
                if metric is not None
                else ""
            )
            raise ValueError(
                f"no engine matches engine='auto' with option(s) "
                f"{', '.join(map(repr, sorted(option_names)))}{metric_note}; "
                f"valid options per engine — {per_engine}"
            )
        return out

    def resolve(
        self,
        name: str,
        *,
        accelerate="auto",
        options: Optional[dict] = None,
        n: Optional[int] = None,
        metric=None,
        radius: Optional[float] = None,
    ) -> Tuple[EngineEntry, dict]:
        """Resolve ``name`` (possibly ``"auto"``) to an entry + options.

        A concrete name validates its options and ``accelerate``
        capability and returns as-is.  ``auto`` runs the policy:

        1. keep engines compatible with the metric family and the given
           option names (options are a constraint, so legacy
           ``engine="auto", capacity=...`` still lands on the M-tree);
        2. ``accelerate=True`` keeps only CSR-capable engines;
        3. at paper scale (``n <= AUTO_FIDELITY_MAX_N``) and without an
           insisted CSR engine, the highest cost fidelity wins — the
           M-tree, the paper's instrument;
        4. beyond that (or with ``accelerate=True``) the policy prefers
           CSR-capable engines: when the request radius is known, a
           blocked-capable engine seeded with it (the grid, whose
           builder exploits radius-sized cells); otherwise a
           tuning-free engine (KD-tree for coordinate data, brute
           force for anything else).

        Returns ``(entry, options)`` where ``options`` may have gained
        the radius seed (:attr:`EngineCapabilities.radius_option`).
        """
        options = dict(options or {})
        if name.lower() != "auto":
            entry = self.get(name)
            entry.validate_options(options)
            entry.validate_accelerate(accelerate)
            return entry, options

        candidates = self._auto_candidates(metric, options)
        if accelerate is True:
            candidates = [
                e for e in candidates if e.capabilities.supports_csr
            ]
            if not candidates:
                raise ValueError(
                    "accelerate=True requires a CSR-capable engine, but no "
                    "registered engine matches the request; use "
                    'accelerate="auto" or name an engine explicitly'
                )
        if accelerate is not True and (n is None or n <= AUTO_FIDELITY_MAX_N):
            exact = [
                e for e in candidates
                if e.capabilities.cost_fidelity == "node-access"
            ]
            if exact:
                return exact[0], options

        def scale_rank(entry: EngineEntry):
            caps = entry.capabilities
            # Must mirror the seeding guard below: r=0 (a valid
            # degenerate radius) cannot seed a cell size, so it must
            # not out-rank the tuning-free engines either.
            radius_seeded = (
                radius is not None and radius > 0 and caps.radius_option is not None
            )
            return (
                caps.supports_csr,
                caps.supports_blocked and radius_seeded,
                caps.radius_option is None,  # tuning-free wins without a hint
                caps.auto_priority,
            )

        best = max(candidates, key=scale_rank)
        caps = best.capabilities
        if (
            caps.radius_option is not None
            and radius is not None
            and radius > 0
            and caps.radius_option not in options
        ):
            options[caps.radius_option] = float(radius)
        return best, options


#: The process-wide registry every built-in engine registers with.
registry = EngineRegistry()


def register_engine(capabilities: EngineCapabilities):
    """Decorator registering an engine class with the global registry."""
    return registry.register(capabilities)

"""Engine infrastructure: the capability registry and adjacency cache.

``repro.engines`` is the pluggable-engine layer behind the public API:
index engines self-register with :func:`register_engine` and an
:class:`EngineCapabilities` descriptor, the request pipeline
(:mod:`repro.requests`) resolves names and ``auto`` policy through
:data:`registry`, and :class:`AdjacencyCache` is the radius-keyed LRU
every index stores its materialised adjacencies in.
"""

from repro.engines.cache import AdjacencyCache
from repro.engines.registry import (
    AUTO_FIDELITY_MAX_N,
    EngineCapabilities,
    EngineEntry,
    EngineRegistry,
    register_engine,
    registry,
)

__all__ = [
    "AdjacencyCache",
    "AUTO_FIDELITY_MAX_N",
    "EngineCapabilities",
    "EngineEntry",
    "EngineRegistry",
    "register_engine",
    "registry",
]

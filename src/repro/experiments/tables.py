"""Plain-text table/series rendering for experiment output.

The benchmarks regenerate the paper's tables and figure series as
monospace text: tables render with aligned columns, figure data renders
as one series per line (x → y pairs), matching what the paper plots.
Everything is also persisted under ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series", "save_text", "results_dir"]


def results_dir() -> str:
    """``results/`` next to the repository root (created on demand)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        root = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "results")
    os.makedirs(root, exist_ok=True)
    return root


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence], *, float_fmt: str = "{:.0f}"
) -> str:
    """Render an aligned monospace table with a title rule."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def format_series(
    title: str, x_label: str, xs: Sequence, series: Dict[str, Sequence]
) -> str:
    """Render figure data: one labelled series per block of lines."""
    lines = [title, "=" * len(title), f"{x_label}: " + "  ".join(str(x) for x in xs)]
    width = max(len(name) for name in series)
    for name, values in series.items():
        rendered = "  ".join(
            f"{v:.3f}" if isinstance(v, float) and abs(v) < 100 else f"{v:.0f}"
            if isinstance(v, float) else str(v)
            for v in values
        )
        lines.append(f"{name.rjust(width)}: {rendered}")
    return "\n".join(lines) + "\n"


def save_text(name: str, text: str) -> str:
    """Persist ``text`` as ``results/<name>.txt``; returns the path."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    return path

"""Terminal scatter plots for 2-d datasets.

The paper's Figures 1 and 6 are scatter plots of the dataset with the
selected objects highlighted.  This renders the same content as ASCII:
``.`` for dataset points, ``o`` for covered density, ``@`` for selected
objects — enough to eyeball coverage behaviour (MaxSum hugging the
outskirts, k-medoids hugging the centres, DisC covering everything).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["ascii_scatter"]


def ascii_scatter(
    points: np.ndarray,
    selected: Optional[Sequence[int]] = None,
    *,
    width: int = 72,
    height: int = 28,
    title: str = "",
) -> str:
    """Render 2-d ``points`` as an ASCII scatter plot.

    Cells holding at least one point show ``.`` (or ``o`` when dense);
    cells holding a selected object show ``@``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"ascii_scatter needs (n, 2) points, got {points.shape}")
    low = points.min(axis=0)
    span = points.max(axis=0) - low
    span[span == 0.0] = 1.0

    cols = np.minimum((points[:, 0] - low[0]) / span[0] * (width - 1), width - 1).astype(int)
    rows = np.minimum((points[:, 1] - low[1]) / span[1] * (height - 1), height - 1).astype(int)
    density = np.zeros((height, width), dtype=int)
    for r, c in zip(rows, cols):
        density[r, c] += 1

    grid = np.full((height, width), " ", dtype="<U1")
    grid[density > 0] = "."
    grid[density > max(2, int(density.max() * 0.35))] = "o"
    if selected is not None:
        for object_id in selected:
            grid[rows[object_id], cols[object_id]] = "@"

    lines = []
    if title:
        lines.append(title)
    border = "+" + "-" * width + "+"
    lines.append(border)
    # Row 0 is the bottom of the plot (y grows upward).
    for r in range(height - 1, -1, -1):
        lines.append("|" + "".join(grid[r]) + "|")
    lines.append(border)
    return "\n".join(lines)

"""Experiment runners regenerating every table and figure of Section 6.

Each public function corresponds to one experiment family (see DESIGN.md
section 5 for the full index).  All runners work on any scale from
:mod:`repro.experiments.config` and return plain data structures that the
benchmark modules format with :mod:`repro.experiments.tables`.

Runs are cached per (dataset, algorithm, radius, tree-config) within the
process, because several figures slice the same sweep (Table 3 and
Figures 7/8 share runs, exactly like the paper reports one experiment
two ways).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    jaccard_distance,
    kmedoids_select,
    maxmin_select,
    maxsum_select,
    solution_summary,
)
from repro.core import (
    DiscResult,
    basic_disc,
    fast_c,
    greedy_c,
    greedy_disc,
    recompute_closest_black,
    zoom_in,
    zoom_out,
)
from repro.datasets import Dataset, clustered_dataset
from repro.experiments.config import (
    DEFAULT_CAPACITY,
    DEFAULT_POLICY,
    ExperimentDataset,
)
from repro.mtree import MTreeIndex, fat_factor

__all__ = [
    "RunRecord",
    "ALGORITHMS",
    "ALGORITHM_SPECS",
    "TABLE3_ALGORITHMS",
    "FIG7_ALGORITHMS",
    "FIG8_ALGORITHMS",
    "run_algorithm",
    "sweep",
    "cardinality_sweep",
    "dimensionality_sweep",
    "fat_factor_sweep",
    "zoom_in_experiment",
    "zoom_out_experiment",
    "model_comparison",
    "lemma7_experiment",
    "fast_c_comparison",
    "capacity_comparison",
    "bottom_up_comparison",
    "radius_for_target_size",
    "clear_cache",
]


@dataclass
class RunRecord:
    """One heuristic execution: the quantities the paper reports."""

    dataset: str
    algorithm: str
    radius: float
    size: int
    node_accesses: int
    seconds: float
    selected: List[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)


#: name -> (heuristic, keyword arguments, needs_precomputed_counts).
#: The runner derives both the M-tree runners and their prune-stripped
#: CSR-engine equivalents from this table (pruning is an M-tree access
#: optimisation with identical output, meaningless off the tree).
ALGORITHM_SPECS: Dict[str, Tuple[Callable, dict, bool]] = {
    "B-DisC": (basic_disc, {}, False),
    "B-DisC (Pruned)": (basic_disc, {"prune": True}, False),
    "Gr-G-DisC": (greedy_disc, {}, True),
    "Gr-G-DisC (Pruned)": (greedy_disc, {"prune": True}, True),
    "Wh-G-DisC (Pruned)": (
        greedy_disc,
        {"update_variant": "white", "prune": True},
        True,
    ),
    "L-Gr-G-DisC (Pruned)": (greedy_disc, {"lazy": True, "prune": True}, True),
    "L-Wh-G-DisC (Pruned)": (
        greedy_disc,
        {"update_variant": "white", "lazy": True, "prune": True},
        True,
    ),
    "G-C": (greedy_c, {}, True),
    "Fast-C": (fast_c, {}, True),
}


def _runner_for(name: str, engine: str) -> Tuple[Callable, bool]:
    func, kwargs, needs_precompute = ALGORITHM_SPECS[name]
    if engine == "csr":
        kwargs = {k: v for k, v in kwargs.items() if k != "prune"}
    return (lambda idx, r: func(idx, r, **kwargs)), needs_precompute


#: name -> (runner(index, radius) -> DiscResult, needs_precomputed_counts)
ALGORITHMS: Dict[str, Tuple[Callable, bool]] = {
    name: _runner_for(name, "mtree") for name in ALGORITHM_SPECS
}

#: Table 3 rows (the paper's "G-DisC" is the grey greedy variant).
TABLE3_ALGORITHMS = [
    "B-DisC",
    "Gr-G-DisC",
    "L-Gr-G-DisC (Pruned)",
    "L-Wh-G-DisC (Pruned)",
    "G-C",
]
#: Figure 7 series.
FIG7_ALGORITHMS = [
    "B-DisC",
    "B-DisC (Pruned)",
    "Gr-G-DisC",
    "Gr-G-DisC (Pruned)",
    "G-C",
]
#: Figure 8 series (all pruned greedy variants vs pruned basic).
FIG8_ALGORITHMS = [
    "B-DisC (Pruned)",
    "Gr-G-DisC (Pruned)",
    "Wh-G-DisC (Pruned)",
    "L-Gr-G-DisC (Pruned)",
    "L-Wh-G-DisC (Pruned)",
]

_CACHE: Dict[tuple, RunRecord] = {}


def clear_cache() -> None:
    """Drop memoised runs (tests use this for isolation)."""
    _CACHE.clear()


def _fresh_index(
    dataset: Dataset,
    radius: Optional[float],
    *,
    capacity: int = DEFAULT_CAPACITY,
    policy: str = DEFAULT_POLICY,
) -> MTreeIndex:
    return MTreeIndex(
        dataset.points,
        dataset.metric,
        capacity=capacity,
        split_policy=policy,
        build_radius=radius,
    )


def _fresh_csr_index(dataset: Dataset, radius: float):
    """A CSR-engine index for solution-size runs (no node accesses).

    Resolved through the engine registry's ``auto`` policy with
    ``accelerate=True`` and the run radius as hint: grid (radius-sized
    cells, cell-pair pruning) for coordinate metrics, brute force for
    Hamming-coded categoricals — the same single policy every other
    entry point uses.
    """
    from repro.requests import EngineSpec

    entry, accelerate, options = EngineSpec(accelerate=True).resolve(
        n=dataset.n, metric=dataset.metric, radius=radius
    )
    return entry.create(dataset.points, dataset.metric, accelerate, options)


def run_algorithm(
    name: str,
    dataset: Dataset,
    radius: float,
    *,
    capacity: int = DEFAULT_CAPACITY,
    policy: str = DEFAULT_POLICY,
    use_cache: bool = True,
    engine: str = "mtree",
) -> RunRecord:
    """Run one named heuristic and record its costs.

    ``engine="mtree"`` (default) is the paper's instrument: a fresh
    M-tree with exact node-access accounting — required for every cost
    experiment.  ``engine="csr"`` is the opt-in fast path for
    *solution-size* experiments: the same heuristic on a CSR-engine
    index (node accesses read 0).  On clustered data the CSR engine
    transparently upgrades to the blocked adjacency of
    :mod:`repro.graph.blocked` (dense cell pairs kept implicit) — still
    byte-identical selections, so nothing here needs to know.
    Greedy/covering selections are
    engine-independent, so sizes match the M-tree records exactly;
    B-DisC's "arbitrary" scan follows each engine's natural order
    (insertion vs. leaf order), so its sizes are engine-specific —
    both are valid instances of the paper's arbitrary selection.
    Fast-C exploits tree shortcuts by definition and stays M-tree-only.
    """
    if engine not in ("mtree", "csr"):
        raise ValueError(f'engine must be "mtree" or "csr", got {engine!r}')
    if name not in ALGORITHM_SPECS:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHM_SPECS)}"
        )
    if engine == "csr" and name == "Fast-C":
        raise ValueError(
            "Fast-C is defined by its M-tree traversal shortcuts; "
            'run it with engine="mtree"'
        )
    runner, needs_precompute = _runner_for(name, engine)
    key = (dataset.name, dataset.n, name, radius, capacity, policy, engine)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    if engine == "csr":
        index = _fresh_csr_index(dataset, radius)
    else:
        index = _fresh_index(
            dataset, radius if needs_precompute else None,
            capacity=capacity, policy=policy,
        )
    start = time.perf_counter()
    result = runner(index, radius)
    elapsed = time.perf_counter() - start
    record = RunRecord(
        dataset=dataset.name,
        algorithm=name,
        radius=radius,
        size=result.size,
        node_accesses=result.node_accesses,
        seconds=elapsed,
        selected=result.selected,
        meta=dict(result.meta, engine=engine),
    )
    if use_cache:
        _CACHE[key] = record
    return record


def sweep(
    exp: ExperimentDataset,
    algorithms: Sequence[str],
    *,
    capacity: int = DEFAULT_CAPACITY,
    policy: str = DEFAULT_POLICY,
    engine: str = "mtree",
) -> Dict[str, List[RunRecord]]:
    """Run each algorithm across the dataset's radii grid.

    ``engine="csr"`` opts solution-size sweeps (Table 3) into the CSR
    fast path; node-access figures must keep the default M-tree.
    """
    return {
        name: [
            run_algorithm(
                name, exp.dataset, radius,
                capacity=capacity, policy=policy, engine=engine,
            )
            for radius in exp.radii
        ]
        for name in algorithms
    }


# ----------------------------------------------------------------------
# Figure 9: cardinality and dimensionality sweeps (Clustered, Greedy-DisC)
# ----------------------------------------------------------------------
def cardinality_sweep(
    cardinalities: Sequence[int], radii: Sequence[float], *, dim: int = 2, seed: int = 42
) -> Dict[float, List[RunRecord]]:
    """Greedy-DisC on Clustered data of growing cardinality (Fig 9a-b)."""
    out: Dict[float, List[RunRecord]] = {radius: [] for radius in radii}
    for n in cardinalities:
        dataset = clustered_dataset(n=n, dim=dim, seed=seed)
        dataset.name = f"Clustered-{n}"
        for radius in radii:
            out[radius].append(
                run_algorithm("Gr-G-DisC (Pruned)", dataset, radius)
            )
    return out


def dimensionality_sweep(
    dims: Sequence[int], radii: Sequence[float], *, n: int = 10000, seed: int = 42
) -> Dict[float, List[RunRecord]]:
    """Greedy-DisC on Clustered data of growing dimensionality (Fig 9c-d)."""
    out: Dict[float, List[RunRecord]] = {radius: [] for radius in radii}
    for dim in dims:
        dataset = clustered_dataset(n=n, dim=dim, seed=seed)
        dataset.name = f"Clustered-{dim}d"
        for radius in radii:
            out[radius].append(
                run_algorithm("Gr-G-DisC (Pruned)", dataset, radius)
            )
    return out


# ----------------------------------------------------------------------
# Figure 10: fat-factor impact
# ----------------------------------------------------------------------
def fat_factor_sweep(
    dataset: Dataset,
    radii: Sequence[float],
    policies: Sequence[str] = ("min_overlap", "max_spread", "balanced", "random"),
    *,
    capacity: int = DEFAULT_CAPACITY,
) -> List[dict]:
    """Greedy-DisC accesses under trees of different fat-factor.

    Different tree shapes do not change which objects are diverse (the
    paper notes this) — only the access counts.  Returns one row per
    policy with its measured fat-factor and the per-radius accesses.
    """
    rows = []
    for policy in policies:
        probe = _fresh_index(dataset, None, capacity=capacity, policy=policy)
        factor = fat_factor(probe.tree)
        accesses = []
        sizes = []
        for radius in radii:
            record = run_algorithm(
                "Gr-G-DisC (Pruned)", dataset, radius, policy=policy, capacity=capacity
            )
            accesses.append(record.node_accesses)
            sizes.append(record.size)
        rows.append(
            {
                "policy": policy,
                "fat_factor": factor,
                "radii": list(radii),
                "node_accesses": accesses,
                "sizes": sizes,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figures 11-16: zooming experiments
# ----------------------------------------------------------------------
def _scratch_greedy(dataset: Dataset, radius: float) -> RunRecord:
    return run_algorithm("Gr-G-DisC (Pruned)", dataset, radius)


def _prepare_previous(
    index: MTreeIndex, selected: List[int], radius: float
) -> DiscResult:
    """Wrap a from-scratch solution as zoom input on the shared index.

    The closest-black post-processing pass (Section 5.2) is charged to
    solution construction, not to the zoom operation, by running it
    before the zoom's stats snapshot.
    """
    tracker = recompute_closest_black(index, selected, radius)
    return DiscResult(
        selected=list(selected),
        radius=radius,
        algorithm="Gr-G-DisC (Pruned)",
        closest_black=tracker.distances,
        meta={"closest_black_exact": True},
    )


def zoom_in_experiment(exp: ExperimentDataset, radii: Sequence[float]) -> List[dict]:
    """Figures 11-13: adapt each Greedy-DisC solution to the next smaller
    radius; compare sizes, accesses and Jaccard distance vs from-scratch.

    ``radii`` must be descending.  Each output row covers one transition
    ``r_prev -> r``.
    """
    if any(b >= a for a, b in zip(radii, radii[1:])):
        raise ValueError("zoom-in radii must be strictly descending")
    dataset = exp.dataset
    shared = _fresh_index(dataset, None)
    rows = []
    for r_prev, r_new in zip(radii, radii[1:]):
        scratch_prev = _scratch_greedy(dataset, r_prev)
        scratch_new = _scratch_greedy(dataset, r_new)
        previous = _prepare_previous(shared, scratch_prev.selected, r_prev)

        arbitrary = zoom_in(shared, previous, r_new, greedy=False)
        previous = _prepare_previous(shared, scratch_prev.selected, r_prev)
        greedy = zoom_in(shared, previous, r_new, greedy=True)

        prev_set = set(scratch_prev.selected)
        rows.append(
            {
                "radius_from": r_prev,
                "radius_to": r_new,
                "sizes": {
                    "Greedy-DisC": scratch_new.size,
                    "Zoom-In": arbitrary.size,
                    "Greedy-Zoom-In": greedy.size,
                },
                "node_accesses": {
                    "Greedy-DisC": scratch_new.node_accesses,
                    "Zoom-In": arbitrary.node_accesses,
                    "Greedy-Zoom-In": greedy.node_accesses,
                },
                "jaccard": {
                    "Greedy-DisC": jaccard_distance(prev_set, scratch_new.selected),
                    "Zoom-In": jaccard_distance(prev_set, arbitrary.selected),
                    "Greedy-Zoom-In": jaccard_distance(prev_set, greedy.selected),
                },
            }
        )
    return rows


_ZOOM_OUT_NAMES = {
    None: "Zoom-Out",
    "a": "Greedy-Zoom-Out (a)",
    "b": "Greedy-Zoom-Out (b)",
    "c": "Greedy-Zoom-Out (c)",
}


def zoom_out_experiment(exp: ExperimentDataset, radii: Sequence[float]) -> List[dict]:
    """Figures 14-16: adapt each Greedy-DisC solution to the next larger
    radius with all four zoom-out variants."""
    if any(b <= a for a, b in zip(radii, radii[1:])):
        raise ValueError("zoom-out radii must be strictly ascending")
    dataset = exp.dataset
    shared = _fresh_index(dataset, None)
    rows = []
    for r_prev, r_new in zip(radii, radii[1:]):
        scratch_prev = _scratch_greedy(dataset, r_prev)
        scratch_new = _scratch_greedy(dataset, r_new)
        prev_set = set(scratch_prev.selected)
        sizes = {"Greedy-DisC": scratch_new.size}
        accesses = {"Greedy-DisC": scratch_new.node_accesses}
        jaccard = {"Greedy-DisC": jaccard_distance(prev_set, scratch_new.selected)}
        for variant, label in _ZOOM_OUT_NAMES.items():
            previous = _prepare_previous(shared, scratch_prev.selected, r_prev)
            adapted = zoom_out(shared, previous, r_new, greedy_variant=variant)
            sizes[label] = adapted.size
            accesses[label] = adapted.node_accesses
            jaccard[label] = jaccard_distance(prev_set, adapted.selected)
        rows.append(
            {
                "radius_from": r_prev,
                "radius_to": r_new,
                "sizes": sizes,
                "node_accesses": accesses,
                "jaccard": jaccard,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 6: qualitative model comparison
# ----------------------------------------------------------------------
def radius_for_target_size(
    dataset: Dataset,
    target: int,
    *,
    low: float,
    high: float,
    tolerance: int = 1,
    engine: str = "mtree",
) -> float:
    """Bisect the radius so Greedy-DisC returns ~``target`` objects.

    The paper fixes k = 15 for its clustered example (r = 0.7 in its
    coordinate frame); our frame differs, so we solve for the radius.
    Only sizes matter here, so ``engine="csr"`` is sound and fast.
    """
    for _ in range(25):
        mid = (low + high) / 2.0
        size = run_algorithm(
            "Gr-G-DisC (Pruned)", dataset, mid, engine=engine
        ).size
        if abs(size - target) <= tolerance:
            return mid
        if size > target:
            low = mid  # need a bigger radius to shrink the solution
        else:
            high = mid
    return (low + high) / 2.0


def model_comparison(
    dataset: Dataset, radius: float, *, seed: int = 0, engine: str = "mtree"
) -> Dict[str, dict]:
    """Figure 6: DisC vs r-C vs MaxMin vs MaxSum vs k-medoids at equal k.

    Compares selections only (no access counts), so ``engine="csr"``
    is sound and fast.
    """
    disc = run_algorithm("Gr-G-DisC (Pruned)", dataset, radius, engine=engine)
    k = max(disc.size, 1)
    selections = {
        "DisC (GMIS)": disc.selected,
        "r-C (GDS)": run_algorithm(
            "G-C", dataset, radius, engine=engine
        ).selected,
        "MaxMin (MMIN)": maxmin_select(dataset.points, dataset.metric, k),
        "MaxSum (MSUM)": maxsum_select(dataset.points, dataset.metric, k),
        "k-medoids (KMED)": kmedoids_select(dataset.points, dataset.metric, k, seed=seed),
    }
    out = {}
    for name, selected in selections.items():
        summary = solution_summary(dataset.points, dataset.metric, selected, radius)
        summary["selected"] = list(selected)
        out[name] = summary
    return out


# ----------------------------------------------------------------------
# Lemma 7 and Section 6 text claims
# ----------------------------------------------------------------------
def lemma7_experiment(dataset: Dataset, radii: Sequence[float]) -> List[dict]:
    """DisC's fMin vs greedy MaxMin's fMin at matched k (Lemma 7).

    Greedy MaxMin is a 2-approximation of the optimal λ*, so
    λ_greedy <= λ* <= 3 λ_DisC must hold with slack.
    """
    from repro.baselines import fmin

    rows = []
    for radius in radii:
        disc = run_algorithm("Gr-G-DisC (Pruned)", dataset, radius)
        if disc.size < 2:
            continue
        lam_disc = fmin(dataset.points, dataset.metric, disc.selected)
        maxmin_ids = maxmin_select(dataset.points, dataset.metric, disc.size)
        lam_greedy = fmin(dataset.points, dataset.metric, maxmin_ids)
        rows.append(
            {
                "radius": radius,
                "k": disc.size,
                "lambda_disc": lam_disc,
                "lambda_maxmin_greedy": lam_greedy,
                "ratio": lam_greedy / lam_disc if lam_disc else float("inf"),
                "bound": 3.0,
            }
        )
    return rows


def fast_c_comparison(dataset: Dataset, radii: Sequence[float]) -> List[dict]:
    """Section 6 text: Fast-C needs fewer accesses than Greedy-C at
    similar solution sizes."""
    rows = []
    for radius in radii:
        greedy = run_algorithm("G-C", dataset, radius)
        fast = run_algorithm("Fast-C", dataset, radius)
        rows.append(
            {
                "radius": radius,
                "greedy_c_size": greedy.size,
                "fast_c_size": fast.size,
                "greedy_c_accesses": greedy.node_accesses,
                "fast_c_accesses": fast.node_accesses,
                "access_saving": 1.0 - fast.node_accesses / max(greedy.node_accesses, 1),
            }
        )
    return rows


def capacity_comparison(
    dataset: Dataset, radius: float, capacities: Sequence[int] = (25, 50, 100)
) -> List[dict]:
    """Section 6 text: doubling node capacity cut accesses by ~45%."""
    rows = []
    for capacity in capacities:
        record = run_algorithm(
            "Gr-G-DisC (Pruned)", dataset, radius, capacity=capacity
        )
        rows.append(
            {
                "capacity": capacity,
                "size": record.size,
                "node_accesses": record.node_accesses,
            }
        )
    return rows


def precompute_ablation(
    dataset: Dataset, radii: Sequence[float], *, capacity: int = DEFAULT_CAPACITY
) -> List[dict]:
    """Section 5.1 claim: computing |N_r| while *building* the tree needs
    fewer accesses than initialising L' on the finished tree (paper: up
    to 45%)."""
    rows = []
    for radius in radii:
        with_build = _fresh_index(dataset, radius, capacity=capacity)
        result_build = greedy_disc(with_build, radius)
        post_hoc = _fresh_index(dataset, None, capacity=capacity)
        result_post = greedy_disc(post_hoc, radius)
        assert result_build.selected == result_post.selected
        rows.append(
            {
                "radius": radius,
                "size": result_build.size,
                "build_time_accesses": result_build.node_accesses,
                "post_hoc_accesses": result_post.node_accesses,
                "saving": 1.0
                - result_build.node_accesses / max(result_post.node_accesses, 1),
            }
        )
    return rows


def bottom_up_comparison(
    dataset: Dataset,
    radius: float,
    *,
    sample: int = 200,
    seed: int = 0,
    capacity: int = 25,
) -> dict:
    """Section 6 text: bottom-up range queries save <= ~5% accesses.

    Uses a reduced node capacity so the tree has 3+ levels even at the
    small benchmark scale — on a 2-level tree the two strategies visit
    exactly the same nodes and the comparison is vacuous.
    """
    index = _fresh_index(dataset, None, capacity=capacity)
    rng = np.random.default_rng(seed)
    ids = rng.choice(dataset.n, size=min(sample, dataset.n), replace=False)

    index.stats.reset()
    for object_id in ids:
        index.range_query(int(object_id), radius)
    top_down = index.stats.node_accesses

    index.stats.reset()
    for object_id in ids:
        index.range_query(int(object_id), radius, bottom_up=True)
    bottom_up = index.stats.node_accesses

    return {
        "radius": radius,
        "queries": len(ids),
        "top_down_accesses": top_down,
        "bottom_up_accesses": bottom_up,
        "saving": 1.0 - bottom_up / max(top_down, 1),
    }

"""Aggregate the ``results/`` directory into one markdown report.

Every benchmark persists its rendered table/series as
``results/<experiment>.txt``; this module stitches them into a single
document (grouped by experiment family, in paper order) so a full
benchmark run can be archived or diffed as one artifact:

>>> from repro.experiments.report import write_report   # doctest: +SKIP
>>> write_report("results/REPORT.md")                   # doctest: +SKIP
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.experiments.tables import results_dir

__all__ = ["collect_results", "render_report", "write_report"]

#: Display order and headings, matched by filename prefix.
_SECTIONS: List[Tuple[str, str]] = [
    ("table3", "Table 3 — solution sizes"),
    ("fig06", "Figure 6 — model comparison"),
    ("fig07", "Figure 7 — node accesses (± pruning)"),
    ("fig08", "Figure 8 — greedy variant costs"),
    ("fig09", "Figure 9 — cardinality & dimensionality"),
    ("fig10", "Figure 10 — fat-factor"),
    ("fig11", "Figure 11 — zoom-in sizes"),
    ("fig12", "Figure 12 — zoom-in node accesses"),
    ("fig13", "Figure 13 — zoom-in Jaccard"),
    ("fig14", "Figure 14 — zoom-out sizes"),
    ("fig15", "Figure 15 — zoom-out node accesses"),
    ("fig16", "Figure 16 — zoom-out Jaccard"),
    ("lemma7", "Lemma 7 — MaxMin quality bound"),
    ("misc", "Section 6 in-text claims"),
    ("ablation", "Ablations & Section 8 extensions"),
    (
        "BENCH",
        "Wall-clock engine trajectory (engines tagged `+blk` ran on the "
        "blocked implicit-dense adjacency of `repro.graph.blocked`; "
        "`stored nnz` vs logical nnz quantifies the memory cut)",
    ),
]


def collect_results(directory: Optional[str] = None) -> Dict[str, str]:
    """Read every ``*.txt`` under the results directory, keyed by stem."""
    directory = directory or results_dir()
    out: Dict[str, str] = {}
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".txt"):
            continue
        with open(os.path.join(directory, name)) as handle:
            out[name[: -len(".txt")]] = handle.read()
    return out


def render_report(results: Optional[Dict[str, str]] = None) -> str:
    """Render all collected results as one markdown document."""
    if results is None:
        results = collect_results()
    lines = [
        "# DisC reproduction — benchmark report",
        "",
        "Generated from `results/*.txt` (one block per benchmark output).",
        "",
    ]
    remaining = dict(results)
    for prefix, heading in _SECTIONS:
        matching = [stem for stem in sorted(remaining) if stem.startswith(prefix)]
        if not matching:
            continue
        lines.append(f"## {heading}")
        lines.append("")
        for stem in matching:
            lines.append("```")
            lines.append(remaining.pop(stem).rstrip("\n"))
            lines.append("```")
            lines.append("")
    if remaining:
        lines.append("## Other outputs")
        lines.append("")
        for stem in sorted(remaining):
            lines.append("```")
            lines.append(remaining[stem].rstrip("\n"))
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def write_report(path: Optional[str] = None) -> str:
    """Write the rendered report; returns the path used."""
    if path is None:
        path = os.path.join(results_dir(), "REPORT.md")
    text = render_report()
    with open(path, "w") as handle:
        handle.write(text)
    return path

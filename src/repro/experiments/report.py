"""Aggregate the ``results/`` directory into one markdown report.

Every benchmark persists its rendered table/series as
``results/<experiment>.txt``; this module stitches them into a single
document (grouped by experiment family, in paper order) so a full
benchmark run can be archived or diffed as one artifact:

>>> from repro.experiments.report import write_report   # doctest: +SKIP
>>> write_report("results/REPORT.md")                   # doctest: +SKIP
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.experiments.tables import results_dir

__all__ = ["collect_results", "render_report", "write_report"]

#: Display order and headings, matched by filename prefix.
_SECTIONS: List[Tuple[str, str]] = [
    ("table3", "Table 3 — solution sizes"),
    ("fig06", "Figure 6 — model comparison"),
    ("fig07", "Figure 7 — node accesses (± pruning)"),
    ("fig08", "Figure 8 — greedy variant costs"),
    ("fig09", "Figure 9 — cardinality & dimensionality"),
    ("fig10", "Figure 10 — fat-factor"),
    ("fig11", "Figure 11 — zoom-in sizes"),
    ("fig12", "Figure 12 — zoom-in node accesses"),
    ("fig13", "Figure 13 — zoom-in Jaccard"),
    ("fig14", "Figure 14 — zoom-out sizes"),
    ("fig15", "Figure 15 — zoom-out node accesses"),
    ("fig16", "Figure 16 — zoom-out Jaccard"),
    ("lemma7", "Lemma 7 — MaxMin quality bound"),
    ("misc", "Section 6 in-text claims"),
    ("ablation", "Ablations & Section 8 extensions"),
    (
        "BENCH",
        "Wall-clock engine trajectory (engines tagged `+blk` ran on the "
        "blocked implicit-dense adjacency of `repro.graph.blocked`; "
        "`stored nnz` vs logical nnz quantifies the memory cut)",
    ),
]


def collect_results(directory: Optional[str] = None) -> Dict[str, str]:
    """Read every ``*.txt`` under the results directory, keyed by stem."""
    directory = directory or results_dir()
    out: Dict[str, str] = {}
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".txt"):
            continue
        with open(os.path.join(directory, name)) as handle:
            out[name[: -len(".txt")]] = handle.read()
    return out


#: Hand-written architecture sections appended after the generated
#: blocks.  They live *here* (not only in the committed REPORT.md)
#: because ``write_report`` regenerates the whole file at the end of
#: every benchmark run — prose kept only in the output would be lost on
#: the next regeneration.
_EPILOGUE = """\
## Public API — the typed request pipeline (PR 4)

The public surface is a typed, serialisable request pipeline backed by
an engine capability registry:

* **`SelectRequest` / `EngineSpec`** (`repro.requests`) describe a
  diversification request — radius, method + method options, engine
  name + `accelerate` gate + engine options.  `validate()` runs once,
  up front (bad radii/methods/engines/options fail identically on empty
  and non-empty data), and both objects round-trip through JSON
  (`to_dict`/`from_dict`).  `DiscResult` has the matching pair on the
  response side (`coloring` stays process-local by design; selection
  ids are canonicalised to plain ints so the wire bytes are
  platform-independent).
* **`execute_request(data, request)`** is the one-shot service entry
  point; `disc_select` / `build_index` are thin shims over it.
* **Engine registry** (`repro.engines`): engines self-register with an
  `EngineCapabilities` descriptor (metric family, CSR/blocked support,
  cost fidelity).  `engine="auto"` is a policy over capabilities and
  workload shape: the M-tree (paper fidelity) up to n=10k, a
  CSR-capable engine beyond it — the grid seeded with the request
  radius when one is known, the KD-tree otherwise, brute force for
  non-coordinate metrics.  Options constrain the policy
  (`engine="auto", capacity=10` still lands on the M-tree).
* **`DiscSession`** (né `DiscDiversifier`, which remains as a
  deprecated shim) is the interactive-mode façade: index once, then
  `select` / `select_many` / zoom / `compare_methods`.  Sessions
  install a radius-keyed LRU adjacency cache (`cache_radii` budget) so
  repeated radii — the zoom back-and-forth pattern of the paper's
  Section 3 — reuse the materialised CSR/blocked adjacency; pass
  `adjacency_cache=` to attach a shared cross-session cache instead
  (see Serving below).

Session cache win on a repeated-radius zoom sequence (`python -m repro
bench --session`, recorded in `results/BENCH_session.json`): 1.9x vs
one-shot `disc_select` at n=20000 (3 adjacency builds instead of 8).

Migration: `DiscDiversifier` → `DiscSession` (same constructor and
methods; the old name warns).  `build_index` / `disc_select` keep their
signatures unchanged.  The API surface is pinned by
`tests/test_api_surface.py`; CI runs the shim-deprecation lane with
warnings-as-errors.

## Serving — the async multi-user layer (PR 5)

`repro serve` hosts the pipeline as an asyncio JSON-over-HTTP service
(`repro.service`, stdlib only) for the paper's interactive workload at
multi-user scale: many users zooming over shared datasets, radii
repeating constantly.

* **Endpoints** — `POST /select`, `POST /zoom`, `GET /datasets`,
  `GET /healthz`, `GET /stats`.  A select body is `{"dataset": name,
  "radius": r, "method": "greedy", "method_options": {...}, "engine":
  {"name": "grid", "options": {"cell_size": 0.05}}}` (request fields
  may also nest under `"request"`); the response carries the request
  echo plus a serialised `DiscResult` under `"result"`:
  `{"dataset": ..., "request": {...}, "result": {"selected": [...],
  "radius": ..., "algorithm": ..., "stats": {...}, "closest_black":
  ..., "meta": {...}}, "elapsed_s": ..., "coalesced": false,
  "degraded": false}`.
  A zoom body adds `"to": r2` (and optionally `"greedy"` / `"variant"`)
  and returns both the base and the adapted result.  Errors are
  structured `{"error": {"code", "message"}}` bodies — see the
  failure-modes table in the fault-tolerance section below.
* **Shared dataset registry** — datasets load once per process and are
  handed out as immutable handles (`DatasetRegistry`); `/select` on an
  unknown name is a 404, never an implicit load of arbitrary data.
* **Cross-session cache** — `SharedCacheManager` is the process-wide
  evolution of the session LRU, keyed `(dataset_id, metric,
  radius_bucket)` (radii quantised to 12 significant digits; the key is
  deliberately engine-agnostic because `N_r` is a property of the data,
  and engine parity is pinned by tests).  Budgets: entry count + bytes
  (LRU), optional TTL.  Concurrent misses of one key *single-flight*:
  the first thread builds, the rest block briefly and reuse
  (`builds == unique radii` under any concurrency).  Sessions attach
  via `DiscSession(..., adjacency_cache=manager.view(dataset_id,
  metric))`.
* **Request coalescing** — identical concurrent requests (same
  canonical dataset + validated request JSON) share one computation;
  followers are counted in `/stats` `coalesced_requests` and marked
  `"coalesced": true`.  Selections run on a bounded thread pool
  (`--workers`), with admission control returning 503 past
  `--max-inflight`.
* **Parity** — every served selection is byte-identical to a direct
  `disc_select` call (pinned by `tests/test_service.py` and re-checked
  inside the load harness before anything is reported).

Load evidence (`python -m repro bench --service`, recorded in
`results/BENCH_service.json`): a 4-client repeated-radius zoom trace
(8 steps, 3 unique radii, n=20000 clustered) against the stateless
no-cache baseline — see the `BENCH_service` block above for the
committed numbers (shared-cache hit rate >= 50%, computations <
requests, throughput >= 1.5x).  CI smoke: `tests/test_service.py`
starts `repro serve` as a subprocess, replays a 2-client trace,
asserts 200s + cache hits + clean SIGTERM shutdown, and `repro bench
--service --quick` runs in the fast lane.

## Fault tolerance — deadlines, degraded modes, chaos (PR 6)

The serving layer degrades predictably instead of hanging or lying.

* **Deadline budgets** — a request may carry `timeout_ms`; the server
  resolves it against `--default-timeout-ms` / `--max-timeout-ms` into
  a `CancellationToken` (`repro.cancellation`) installed ambiently in
  the worker thread.  The greedy segment-tree pop loops, the
  Basic-DisC scan, and the chunked CSR/blocked adjacency builders
  checkpoint every 256 iterations, so a timed-out request aborts
  within one checkpoint interval and *frees its executor slot*
  (`/stats` `inflight` returns to 0 — asserted by the chaos suite).
  Expiry answers 408 when the client's own budget was the binding
  constraint, 504 when the server default or cap was.
* **Failure modes** — every non-200 body is `{"error": {"code":
  ..., "message": ...}}`; unexpected exceptions answer 500 carrying
  only the exception type name (raw `str(exc)` never reaches the
  wire):

  | status | code | meaning | retryable |
  |--------|------|---------|-----------|
  | 400 | `bad_request` | invalid body, radius, engine, `timeout_ms`... | no |
  | 404 | `not_found` | unknown dataset or path | no |
  | 405 | `method_not_allowed` | wrong HTTP verb | no |
  | 408 | `deadline_exceeded` | the client's `timeout_ms` expired | yes, with a larger budget |
  | 413 | `payload_too_large` | body over the 16 MiB cap | no |
  | 500 | `internal` | unexpected server error | yes |
  | 503 | `build_failed` | the adjacency build raised (propagated to all coalesced waiters) | yes |
  | 503 | `circuit_open` | repeated build failures; no stale fallback on hand | yes, after backoff |
  | 503 | `injected_fault` | a configured chaos fault fired | yes |
  | 503 | `overloaded` | admission control past `--max-inflight` | yes |
  | 503 | `no_workers` | (`--workers N`) every replica of the shard is restarting or quarantined | yes |
  | 503 | `replay_exhausted` | (`--workers N`) replayed across worker deaths past the cap | yes |
  | 504 | `server_deadline_exceeded` | the server default/cap expired | yes |

* **Failure containment** — a failing build propagates to every
  coalesced waiter *promptly* (never by riding out the build-wait
  timeout); repeated failures trip a per-`(dataset, metric,
  radius_bucket)` circuit breaker (closed → open → half-open, with
  exactly one probe per half-open window).  TTL-expired cache entries
  demote to a **stale tier** and are served — response marked
  `"degraded": true`, counted in `/stats` `degraded_responses` — when
  the breaker is open or the remaining deadline cannot fit a rebuild.
  Datasets are immutable, so a stale adjacency still yields
  byte-identical selections; "degraded" is about freshness accounting,
  not accuracy.
* **Client retries** — `ServiceClient(retry=RetryPolicy(...))` retries
  connection failures and 503s with jittered exponential backoff under
  a total sleep budget.  Every retried compute request reuses one
  idempotency key: a retry whose original is still running joins it
  via request-level single-flight; one whose original completed (the
  response was lost on the wire) replays the stored response.
  `wait_until_healthy` uses the same capped backoff and surfaces the
  last underlying error on exhaustion.
* **Graceful drain** — SIGTERM stops accepting new connections,
  in-flight requests complete within `--drain-timeout`, exit 0
  (pinned by a subprocess test with a request mid-flight).
* **Fault injection + chaos** — `repro serve --faults '{"seed": 1,
  "build_failure_rate": 0.2}'` enables deterministic, seeded injection
  points (build raises, slow builds, cache corruption, connection
  resets, worker stalls) baked into the production code paths — no
  monkeypatching, every point draws from its own seeded stream and is
  counted under `/stats` → `faults`.  The chaos suite
  (`tests/test_resilience.py`, CI "Resilience lane") replays the
  4-client zoom trace under fault mixes and asserts zero hung
  requests, the in-flight gauge draining to 0, and byte-parity of
  every success with the fault-free run.

The **deadline** phase of `python -m repro bench --service` replays
the shared trace under a per-request budget sized at the stateless
p90 and records p99 <= `timeout_ms` + one checkpoint allowance
(250 ms), with timed-out and degraded responses counted separately in
`results/BENCH_service.json`.

## Supervised serving — multi-process pool, shared memory (PR 7)

PR 6 made one process fault-tolerant; `repro serve --workers N` makes
the *service* survive the death of its parts (`repro.service.
supervisor`).

* **Failover routing** — a front process owns the public port and
  routes `/select`/`/zoom` to the least-loaded healthy replica of the
  dataset's shard (`--replication k` places each dataset on k
  workers; the default replicates everywhere).  Every forwarded
  compute request is stamped with an idempotency key, so when a
  worker dies mid-request — including `kill -9` — the front replays
  it to a healthy replica and the client sees a slow response, never
  an error (replays are capped; exhaustion answers 503
  `replay_exhausted`, an empty shard 503 `no_workers`).
* **Supervision** — a heartbeat loop (default 250 ms) detects worker
  exits and dark workers (repeated failed `/healthz` probes escalate
  to SIGKILL + restart).  Crashed workers restart with exponential
  backoff; K deaths inside a sliding window quarantine the worker and
  its shard fails over to the survivors.  `GET /stats` at the front
  returns a cluster rollup: per-worker stats plus `restarts`,
  `crashes`, `replays`, `stall_kills`, `quarantined`.
* **Shared-memory adjacency** — CSR/blocked adjacency arrays and
  builtin dataset coordinates live in `multiprocessing.shared_memory`
  segments (`repro.service.shm`), so one build serves every worker
  zero-copy and `builds == unique radii` holds *cluster-wide*: the
  kernel arbitrates claim ownership (`SharedMemory(create=True)` is
  exclusive), workers attach read-only NumPy views, and a builder
  that dies mid-build is detected by a pid liveness probe and taken
  over.  Segments are CRC32-stamped at publish and verified at attach
  — a torn segment is rebuilt, never served.  Segment names carry a
  leased run id; an orphan sweep at startup and shutdown unlinks
  every run whose lease owner is dead, so `kill -9` cannot leak
  `/dev/shm` (asserted after every chaos trace).
* **Chaos evidence** — the `chaos` pytest lane (CI, pushes to main)
  SIGKILLs a worker mid-zoom-trace and asserts the acceptance
  scenario: zero lost or hung requests, responses byte-identical to
  the fault-free run, `inflight` drained to 0, and an empty post-stop
  segment listing.  The PR 6 fault mixes rerun under supervision
  unchanged.

The **supervised** phase of `python -m repro bench --service` replays
the shared trace against a 4-worker pool and records the per-worker
rollup, restart/replay counts, and cluster-wide build totals in
`results/BENCH_service.json` (schema v3).  Throughput scaling is a
hardware claim: the summary records `cpu_count` and a `core_bound`
flag, and the >= 2.5x multi-worker bar applies only when the box
actually has a core per worker (on a 1-core runner the processes
time-slice one CPU and the recorded speedup is honestly < 1).

## Static analysis — mechanically enforced invariants (PR 8)

PRs 1-7 *documented* the concurrency contracts (counters under their
lock, checkpoints in hot loops, held-handle shm views, int32 ids,
nothing blocking on the event loop, cancellations never swallowed);
`repro lint` (`repro.analysis`, stdlib-only AST rules) now *enforces*
them, so the next regression is a red CI lane instead of a heisenbug.

* **Ground truth in the code** — classes sharing mutable state declare
  a `_GUARDED_BY` map (attribute -> lock expression, or the
  `event-loop` sentinel for asyncio-owned state); the
  `guarded-attribute` rule flags any mutation outside a `with` on that
  lock, outside `async def` for event-loop state, and outside helpers
  whose docstring states the caller-holds-lock contract.
* **Suppression discipline** — deliberate exceptions are inline
  (`# repro-lint: disable=RULE -- why`); the reason is mandatory and a
  reasonless or unknown-rule suppression is itself a finding, so the
  shipped tree lints clean *including* its own escape hatches.
* **Runtime lock-order audit** — `REPRO_LOCK_AUDIT=1` swaps the
  `threading` lock factories for recording proxies before any repro
  module loads; the test run accumulates a site-granularity lock
  acquisition graph and the session fails on an ordering cycle.  Over
  the serving suites the graph is acyclic (34 lock sites, 7 ordered
  edges at last measure) — the ABBA deadlock shape is excluded without
  ever scheduling the deadlock.
* **True positives fixed** — the sweep over `src/` caught two real
  cancellation bugs in the serving layer: the shared cache's publish
  path caught `OperationCancelled` in a broad `except` (a timed-out
  request silently kept going), and a deadline expiring inside shm
  decode destroyed an *intact* cluster-wide segment via the
  corrupt-payload takeover path.  Both are fixed with regression tests
  (`tests/test_analysis.py`).
* **CI `lint` lane** — `repro lint src/` (exit 0 required), a
  seeded-violation self-test proving each rule fires, and the
  lock-order audit over `tests/test_service.py` +
  `tests/test_supervisor.py`; nothing cached.

## Live datasets — mutable serving, O(delta) per batch (PR 9)

The paper's zoom knob assumed a frozen point set; `repro.live` removes
that assumption without touching the immutable fast paths (responses
for non-live datasets stay byte-identical).

* **Versioned overlay** — `MutableDataset`: ids are arrival positions
  forever, deletes are tombstones, every batch bumps the version and
  restamps the identity (`name@v<k>`) that keys caches, shm segments
  and single-flight — stale state is unreachable by construction, and
  `/select`/`/zoom` responses carry `version` + `selected_global`.
* **Incremental adjacency** — `IncrementalNeighborhood` pins the
  initial grid plan and feeds each insert batch through the
  cell-offset classification, so new edges cost the touched cells'
  neighborhoods, not n; compacted snapshots are byte-identical to a
  fresh build (parity-tested under interleaved churn).
* **The hot path never compacts** — cache buckets migrate *lazily*
  (the recipe, pinned to the batch's alive mask, materialises on first
  read; counted as `migrations`, never `builds`), and `/mutate` repair
  takes the O(delta) frontier walk: survivors are kept verbatim,
  greedy re-cover runs only over neighborhoods orphaned by deleted
  blacks plus out-of-coverage inserts — proven pick-for-pick identical
  to the full compacted-snapshot repair.
* **Measured contract** (`BENCH_service.json`, `bench-service-v4`,
  mutation lane: 10 batches × 10% churn, clustered n=20k): repaired
  selections independently verified r-DisC diverse every batch;
  Jaccard stability ≈0.95 vs ≈0.39 for recompute-from-scratch;
  `/mutate`+repair ≥5x faster than re-register + recompute (6.9x at
  last measure).
* **Crash-consistency** — under `--workers N` the front serialises
  mutations per dataset, applies them on every replica, and keeps the
  authoritative log; the chaos lane `kill -9`s a worker mid-stream and
  asserts zero lost mutations, full-log replay before the restarted
  replica takes traffic, and convergence of every replica on the same
  version.

## Observability — tracing, metrics, phase profiling (PR 10)

PRs 5-9 grew a serving stack whose interesting behavior (coalescing,
stale tiers, replays, lazy migration) was visible only as aggregate
counters; `repro.obs` (stdlib-only, imported *by* the service, never
the reverse) makes each request tell its own story.

* **Span-tree tracing** — the handler opens an ambient
  `request_scope` (contextvars, the `repro.cancellation` pattern);
  library code opens `phase(...)` children with zero plumbing —
  `validate`, `selection`, `cache-lookup`, `adjacency-build`,
  `shm-attach`, `repair` — and pays one `ContextVar.get` when tracing
  is off.  The executor hop re-enters the loop's span via
  `attach`.  Every response carries `X-Repro-Trace:
  <trace_id>:<span_id>` plus a `Server-Timing` header
  (total/build/select, parsed by `ServiceClient.last_server_timing`).
* **Cross-process propagation** — the supervisor front mints the
  trace id and stamps the header on the proxied worker request,
  re-stamped identically on every replay attempt, and the worker's
  root span adopts it: one id correlates the front record, the worker
  that died mid-request, and the replica that answered (asserted by
  the chaos lane's `trace_correlation` and by
  `tests/test_obs.py` under deterministic crash faults).
* **Metrics registry** — `repro.obs.metrics`: counters, gauges,
  fixed-bucket histograms behind one lock (snapshots are consistent
  cuts); names enforced to `repro_[a-z0-9_]+` at registration *and*
  by lint.  `GET /metrics` serves the Prometheus text format
  (`text/plain; version=0.0.4`); `/stats` folds in the same snapshot
  plus executor `queue_depth`; the supervised front merges worker
  snapshots (counters/gauges sum, histograms sum bucket-wise) into
  one cluster exposition and a rollup that now carries
  migration/degraded/queue-depth totals.
* **Trace sink** — `--trace-log PATH` appends one JSONL record per
  completed request (`repro-trace-v1`: request feature vector +
  per-phase durations + status), size-capped with `PATH.1` rotation;
  workers write `PATH.w<k>`.  `repro trace summarize` rolls logs up
  into per-phase p50/p90/max and the slowest traces; `repro trace
  validate` is the CI schema gate over the smoke lane's emitted log.
* **span-discipline lint** — the `service`-scoped rule fails CI when
  an HTTP handler reads and answers requests without opening a
  request span, and when any literal metric name (any scope) violates
  the registry regex.
* **Measured overhead** — the `tracing` lane of `python -m repro
  bench --service` (schema v5) replays the shared-cache trace with
  tracing+sink off and on in a balanced order and records the p50
  delta: within the <= 5% acceptance bar (about -2% at last measure —
  the per-request cost is a few span objects and one buffered JSONL
  append, below run-to-run noise).
"""


def render_report(results: Optional[Dict[str, str]] = None) -> str:
    """Render all collected results as one markdown document, ending
    with the hand-maintained architecture epilogue."""
    if results is None:
        results = collect_results()
    lines = [
        "# DisC reproduction — benchmark report",
        "",
        "Generated from `results/*.txt` (one block per benchmark output).",
        "",
    ]
    remaining = dict(results)
    for prefix, heading in _SECTIONS:
        matching = [stem for stem in sorted(remaining) if stem.startswith(prefix)]
        if not matching:
            continue
        lines.append(f"## {heading}")
        lines.append("")
        for stem in matching:
            lines.append("```")
            lines.append(remaining.pop(stem).rstrip("\n"))
            lines.append("```")
            lines.append("")
    if remaining:
        lines.append("## Other outputs")
        lines.append("")
        for stem in sorted(remaining):
            lines.append("```")
            lines.append(remaining[stem].rstrip("\n"))
            lines.append("```")
            lines.append("")
    lines.append(_EPILOGUE)
    return "\n".join(lines)


def write_report(path: Optional[str] = None) -> str:
    """Write the rendered report; returns the path used."""
    if path is None:
        path = os.path.join(results_dir(), "REPORT.md")
    text = render_report()
    with open(path, "w") as handle:
        handle.write(text)
    return path

"""Wall-clock benchmark harness for the CSR neighborhood engine.

The paper's figures measure *node accesses*; this module seeds the
complementary trajectory the ROADMAP asks for — raw wall-clock of index
build + greedy selection at growing cardinalities, so every future
engine or heuristic change can be judged against a recorded baseline.

Workloads are the three numeric dataset families (uniform / clustered /
cities) at n ∈ {2000, 10000, 50000, 100000, 200000}, plus a 500k
clustered tier (:data:`EXTRA_SIZES`) that only the blocked adjacency
makes feasible.  Engines:

``brute-legacy``
    :class:`BruteForceIndex` with ``accelerate=False`` — the seed
    implementation (Python neighbor lists, per-neighbor loops).  The
    reference the speedup column is computed against.
``brute-csr`` / ``grid-csr`` / ``kdtree-csr``
    the same heuristics driven by the CSR engine.  The grid-backed
    builds auto-upgrade to the blocked adjacency on dense-pair-heavy
    workloads (``adjacency_blocked`` in the record, with
    ``adjacency_blocked_s`` = the blocked build's wall-clock,
    ``peak_nnz`` = logical edges a flat CSR would store and
    ``stored_nnz`` = what is actually materialised).

The legacy engine is only timed up to ``LEGACY_MAX_N`` (it is the thing
being replaced); the CSR engines run at every cardinality.  At the
scale tiers (n > 50000) the per-workload radius shrinks as
``sqrt(50000 / n)`` so neighborhood density — and with it nnz per
object — stays at the 50k reference level instead of growing linearly
with n.  Each run records per-phase wall-clock: ``index_s`` (index
constructor), ``adjacency_s`` (CSR materialisation / legacy
precompute), ``select_s`` (one full Greedy-DisC), plus ``build_s`` =
index + adjacency.  On the 50k+ grid runs both selection strategies of
:mod:`repro.core.greedy` are additionally timed head-to-head
(``select_lazy_s`` / ``select_eager_s``) — the record behind the
``CSR_SELECTION_STRATEGY`` default.

Results are emitted as ``results/BENCH_perf.json`` with one record per
(workload, n, engine) and a ``speedups`` section keyed
``<workload>-<n>``.  Run via ``python -m repro bench [--quick]`` or
the ``slow``-marked ``benchmarks/test_perf_wallclock.py``.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import __version__
from repro.core import greedy_disc
from repro.core import greedy as greedy_module
from repro.datasets import cities_dataset, clustered_dataset, uniform_dataset
from repro.experiments.tables import format_table, results_dir
from repro.graph.blocked import BlockedNeighborhood
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex

__all__ = [
    "BENCH_SIZES",
    "QUICK_SIZES",
    "EXTRA_SIZES",
    "GRID_ONLY_MIN_N",
    "LEGACY_MAX_N",
    "DENSITY_REFERENCE_N",
    "bench_radius",
    "run_wallclock_bench",
    "render_bench_table",
    "write_bench_json",
    "SESSION_ZOOM_PATTERN",
    "run_session_bench",
    "render_session_table",
    "write_session_json",
]

BENCH_SIZES = [2000, 10000, 50000, 100000, 200000]
QUICK_SIZES = [2000]

#: Extra per-workload scale tiers beyond :data:`BENCH_SIZES`.  The 500k
#: clustered tier exists because the blocked adjacency makes it
#: feasible at all: flat CSR would materialise ~800M explicit edges
#: (3+ GB of int32 indices plus assembly time) where the blocked
#: engine stores the dense fraction as id arrays.
EXTRA_SIZES = {"clustered": [500000]}

#: Largest n the seed (legacy brute-force) engine is timed at; beyond
#: this it is impractically slow, which is the point of the CSR engine.
LEGACY_MAX_N = 10000

#: Above this n only the grid engine runs: the KD-tree build
#: (``query_pairs`` + edge sort) has no blocked upgrade and its flat
#: edge list stops fitting comfortably in memory at paper densities.
GRID_ONLY_MIN_N = 300000

#: Radii giving paper-like neighborhood densities per workload family.
BENCH_RADII = {"uniform": 0.05, "clustered": 0.05, "cities": 0.01}

#: Above this n the radius is scaled to keep density at the 50k level.
DENSITY_REFERENCE_N = 50000

#: n from which the head-to-head selection-strategy timings are taken.
STRATEGY_BENCH_MIN_N = 50000

_WORKLOADS: Dict[str, Callable] = {
    "uniform": lambda n: uniform_dataset(n=n, dim=2, seed=42),
    "clustered": lambda n: clustered_dataset(n=n, dim=2, seed=42),
    "cities": lambda n: cities_dataset(n=n, seed=42),
}


def bench_radius(workload: str, n: int, base: Optional[float] = None) -> float:
    """The benchmark radius for one (workload, n) cell.

    Up to :data:`DENSITY_REFERENCE_N` the paper-like base radius is
    used unchanged (keeping the 2k/10k/50k tiers comparable with the
    PR 1 trajectory); beyond it the 2-d density-preserving scaling
    ``base * sqrt(reference / n)`` pins the average degree at its 50k
    value, so the scale tiers measure engine throughput rather than a
    quadratically growing edge count.
    """
    base = BENCH_RADII[workload] if base is None else base
    if n <= DENSITY_REFERENCE_N:
        return base
    return base * math.sqrt(DENSITY_REFERENCE_N / n)


def _engines(n: int) -> Dict[str, Callable]:
    engines: Dict[str, Callable] = {}
    if n <= LEGACY_MAX_N:
        engines["brute-legacy"] = lambda pts, metric: BruteForceIndex(
            pts, metric, accelerate=False
        )
        engines["brute-csr"] = lambda pts, metric: BruteForceIndex(pts, metric)
    engines["grid-csr"] = lambda pts, metric: GridIndex(pts, metric, cell_size=0.05)
    if n <= GRID_ONLY_MIN_N:
        engines["kdtree-csr"] = lambda pts, metric: KDTreeIndex(pts, metric)
    return engines


def _time_selection_strategies(index, radius: float) -> Dict[str, float]:
    """Head-to-head lazy vs eager selection on a warm index."""
    timings: Dict[str, float] = {}
    previous = greedy_module.CSR_SELECTION_STRATEGY
    try:
        for strategy in ("lazy", "eager"):
            greedy_module.CSR_SELECTION_STRATEGY = strategy
            t0 = time.perf_counter()
            greedy_disc(index, radius)
            timings[f"select_{strategy}_s"] = round(time.perf_counter() - t0, 6)
    finally:
        greedy_module.CSR_SELECTION_STRATEGY = previous
    return timings


def run_wallclock_bench(
    sizes: Optional[List[int]] = None,
    workloads: Optional[List[str]] = None,
    *,
    quick: bool = False,
    radius_overrides: Optional[Dict[str, float]] = None,
) -> dict:
    """Time index build + Greedy-DisC selection across the grid.

    Build time covers index construction plus neighborhood
    materialisation (CSR build / legacy precompute) — the work a server
    amortises across queries; select time is one full Greedy-DisC run.
    Selections of every engine at the same (workload, n) are checked
    for equality, so each benchmark run doubles as a parity test.
    """
    base_sizes = list(
        sizes if sizes is not None else (QUICK_SIZES if quick else BENCH_SIZES)
    )
    explicit_sizes = sizes is not None
    workloads = list(workloads or _WORKLOADS)
    radii = dict(BENCH_RADII)
    radii.update(radius_overrides or {})

    runs: List[dict] = []
    speedups: Dict[str, float] = {}
    for workload in workloads:
        workload_sizes = list(base_sizes)
        if not explicit_sizes and not quick:
            workload_sizes += EXTRA_SIZES.get(workload, [])
        for n in workload_sizes:
            data = _WORKLOADS[workload](n)
            radius = bench_radius(workload, n, radii[workload])
            selections: Dict[str, list] = {}
            timings: Dict[str, float] = {}
            for engine_name, factory in _engines(n).items():
                t0 = time.perf_counter()
                index = factory(data.points, data.metric)
                t1 = time.perf_counter()
                index.neighborhood_sizes(radius)  # materialise adjacency
                t2 = time.perf_counter()
                result = greedy_disc(index, radius)
                t3 = time.perf_counter()
                selections[engine_name] = result.selected
                timings[engine_name] = t3 - t0
                record = {
                    "workload": workload,
                    "n": n,
                    "engine": engine_name,
                    "radius": radius,
                    "index_s": round(t1 - t0, 6),
                    "adjacency_s": round(t2 - t1, 6),
                    "build_s": round(t2 - t0, 6),
                    "select_s": round(t3 - t2, 6),
                    "total_s": round(t3 - t0, 6),
                    "solution_size": result.size,
                }
                blocked = False
                adjacency = index.csr_neighborhood(radius, build=False)
                if adjacency is not None:
                    # peak_nnz = logical edges (what a flat CSR stores);
                    # stored_nnz = what this engine actually keeps.
                    blocked = isinstance(adjacency, BlockedNeighborhood)
                    record["peak_nnz"] = int(adjacency.nnz)
                    record["stored_nnz"] = int(
                        getattr(adjacency, "stored_nnz", adjacency.nnz)
                    )
                    record["adjacency_blocked"] = blocked
                    if blocked:
                        record["adjacency_blocked_s"] = record["adjacency_s"]
                        record["dense_edge_fraction"] = round(
                            adjacency.dense_fraction, 6
                        )
                if (
                    engine_name == "grid-csr"
                    and n >= STRATEGY_BENCH_MIN_N
                    and not blocked
                    # On a blocked adjacency both strategy names resolve
                    # to the block-aggregated sweep; a head-to-head
                    # would time the same loop twice.
                ):
                    record.update(_time_selection_strategies(index, radius))
                runs.append(record)
            reference_name = (
                "brute-legacy" if "brute-legacy" in selections
                else next(iter(selections))
            )
            reference = selections[reference_name]
            mismatched = [
                name for name, sel in selections.items() if sel != reference
            ]
            if mismatched:
                raise AssertionError(
                    f"engine selections diverged on {workload} n={n}: "
                    f"{mismatched} vs {reference_name}"
                )
            if "brute-legacy" in selections:
                speedups[f"{workload}-{n}"] = round(
                    timings["brute-legacy"] / timings["brute-csr"], 2
                )
    return {
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "sizes": base_sizes,
            "extra_sizes": {} if explicit_sizes or quick else dict(EXTRA_SIZES),
            "radii": {w: radii[w] for w in workloads},
            "density_reference_n": DENSITY_REFERENCE_N,
            "legacy_max_n": LEGACY_MAX_N,
        },
        "runs": runs,
        "speedups": speedups,
    }


def render_bench_table(payload: dict) -> str:
    """Human-readable view of a :func:`run_wallclock_bench` payload."""
    rows = [
        [
            run["workload"],
            run["n"],
            run["engine"] + ("+blk" if run.get("adjacency_blocked") else ""),
            f"{run.get('index_s', 0.0):.3f}",
            f"{run.get('adjacency_s', 0.0):.3f}",
            f"{run['build_s']:.3f}",
            f"{run['select_s']:.3f}",
            f"{run['total_s']:.3f}",
            run["solution_size"],
        ]
        for run in payload["runs"]
    ]
    table = format_table(
        "Wall-clock: index build + Greedy-DisC selection "
        "(+blk = blocked adjacency)",
        ["workload", "n", "engine", "index s", "adj s", "build s",
         "select s", "total s", "|S|"],
        rows,
    )
    blocked_rows = [
        f"  {run['workload']}-{run['n']} ({run['engine']}): "
        f"stored nnz {run['stored_nnz']:,} of {run['peak_nnz']:,} logical "
        f"({run['dense_edge_fraction']:.1%} implicit)"
        for run in payload["runs"]
        if run.get("adjacency_blocked")
    ]
    if blocked_rows:
        table += "\nblocked adjacencies:\n" + "\n".join(blocked_rows)
    strategy_rows = [
        f"  {run['workload']}-{run['n']}: lazy {run['select_lazy_s']:.3f}s / "
        f"eager {run['select_eager_s']:.3f}s"
        for run in payload["runs"]
        if "select_lazy_s" in run
    ]
    if strategy_rows:
        table += "\nselection strategies (grid-csr):\n" + "\n".join(strategy_rows)
    if payload["speedups"]:
        lines = [
            f"  {key}: {value:.1f}x (brute-legacy / brute-csr)"
            for key, value in sorted(payload["speedups"].items())
        ]
        table += "\nspeedups:\n" + "\n".join(lines)
    return table


def write_bench_json(payload: dict, path: Optional[str] = None) -> str:
    """Persist the payload as ``results/BENCH_perf.json`` (or ``path``)."""
    if path is None:
        path = os.path.join(results_dir(), "BENCH_perf.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Session adjacency-cache benchmark (the DiscSession reuse story)
# ----------------------------------------------------------------------

#: The interactive zoom pattern: coarse view, zoom in, back out, in
#: again, wider, back to the start — radii repeat, which is exactly what
#: the session's LRU adjacency cache exists for.  Multipliers of the
#: workload's benchmark radius.
SESSION_ZOOM_PATTERN = (1.0, 0.5, 1.0, 0.5, 1.5, 1.0, 0.5, 1.5)


def run_session_bench(
    n: int = 20_000,
    workload: str = "clustered",
    *,
    quick: bool = False,
    pattern: Optional[List[float]] = None,
) -> dict:
    """Time a repeated-radius zoom sequence: session vs one-shot requests.

    The one-shot baseline is the stateless service pattern — a fresh
    :func:`repro.api.disc_select` per request, which rebuilds index and
    adjacency every time.  The session path builds one
    :class:`~repro.api.DiscSession` and replays the same radii through
    :meth:`~repro.api.DiscSession.select_many`, so repeated radii hit
    the LRU adjacency cache.  Both sides run the same grid engine with
    the same cell size, and the selections are asserted identical, so
    the delta is purely build/cache work.
    """
    from repro.api import DiscSession, disc_select

    if quick:
        n = min(n, 5000)
    data = _WORKLOADS[workload](n)
    base = bench_radius(workload, n)
    multipliers = list(pattern or SESSION_ZOOM_PATTERN)
    radii = [base * m for m in multipliers]
    engine_options = {"cell_size": base}

    t0 = time.perf_counter()
    one_shot = [
        disc_select(data, r, engine="grid", engine_options=dict(engine_options))
        for r in radii
    ]
    one_shot_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    session = DiscSession(data, engine="grid", **engine_options)
    results = session.select_many(radii)
    session_s = time.perf_counter() - t0

    for a, b in zip(one_shot, results):
        assert a.selected == b.selected, "session parity violated"

    return {
        "schema": "bench-session-v1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro": __version__,
        "workload": workload,
        "n": n,
        "radii": [round(r, 6) for r in radii],
        "unique_radii": len(set(radii)),
        "selects": len(radii),
        "sizes": [r.size for r in results],
        "one_shot_s": round(one_shot_s, 6),
        "session_s": round(session_s, 6),
        "speedup": round(one_shot_s / session_s, 3) if session_s else None,
        "cache": session.cache_info(),
    }


def render_session_table(payload: dict) -> str:
    """Human-readable summary of one :func:`run_session_bench` payload."""
    cache = payload["cache"]
    return format_table(
        f"Session adjacency cache — {payload['workload']} "
        f"(n={payload['n']}, {payload['selects']} selects over "
        f"{payload['unique_radii']} radii)",
        ["path", "seconds", "builds", "cache hits"],
        [
            ["one-shot disc_select", payload["one_shot_s"], payload["selects"], 0],
            ["DiscSession.select_many", payload["session_s"],
             cache["misses"], cache["hits"]],
            [f"speedup {payload['speedup']}x", "", "", ""],
        ],
        float_fmt="{:.3f}",
    )


def write_session_json(payload: dict, path: Optional[str] = None) -> str:
    """Persist the payload as ``results/BENCH_session.json`` (or ``path``)."""
    if path is None:
        path = os.path.join(results_dir(), "BENCH_session.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

"""Experiment configuration: datasets, radii grids, and scale control.

The paper's evaluation (Section 6, Table 2) uses:

* "Uniform" and "Clustered": 2-d, 10000 objects, radii 0.01 .. 0.07,
* "Cities": 5922 objects, radii 0.001 .. 0.015,
* "Cameras": 579 objects, Hamming radii 1 .. 6,
* M-tree node capacity 50, MinOverlap splits.

Because the reproduction's M-tree is pure Python, the default benchmark
scale trims the synthetic cardinalities so the whole suite runs in
minutes; set ``REPRO_SCALE=paper`` to restore the exact paper sizes.
EXPERIMENTS.md records which scale produced the published numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets import (
    Dataset,
    cameras_dataset,
    cities_dataset,
    clustered_dataset,
    uniform_dataset,
)

__all__ = [
    "SCALES",
    "current_scale",
    "ExperimentDataset",
    "experiment_suite",
    "zoom_in_series",
    "zoom_out_series",
    "DEFAULT_CAPACITY",
    "DEFAULT_POLICY",
]

DEFAULT_CAPACITY = 50
DEFAULT_POLICY = "min_overlap"

#: Paper radii grids per dataset (Table 3 column heads).
UNIFORM_RADII = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07]
CLUSTERED_RADII = UNIFORM_RADII
CITIES_RADII = [0.001, 0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015]
CAMERAS_RADII = [1, 2, 3, 4, 5, 6]

SCALES = {
    # cardinality per dataset at each scale
    "small": {"Uniform": 2500, "Clustered": 2500, "Cities": 2000, "Cameras": 579},
    "paper": {"Uniform": 10000, "Clustered": 10000, "Cities": 5922, "Cameras": 579},
}


def current_scale() -> str:
    """The active scale name (env ``REPRO_SCALE``, default "small")."""
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {scale!r}"
        )
    return scale


@dataclass
class ExperimentDataset:
    """A dataset paired with its paper radii grid."""

    dataset: Dataset
    radii: List[float]

    @property
    def name(self) -> str:
        return self.dataset.name


def experiment_suite(scale: str = None, seed: int = 42) -> Dict[str, ExperimentDataset]:
    """The four evaluation datasets at the requested scale."""
    scale = scale or current_scale()
    sizes = SCALES[scale]
    return {
        "Uniform": ExperimentDataset(
            uniform_dataset(n=sizes["Uniform"], dim=2, seed=seed), UNIFORM_RADII
        ),
        "Clustered": ExperimentDataset(
            clustered_dataset(n=sizes["Clustered"], dim=2, seed=seed), CLUSTERED_RADII
        ),
        "Cities": ExperimentDataset(
            cities_dataset(n=sizes["Cities"], seed=seed), CITIES_RADII
        ),
        "Cameras": ExperimentDataset(
            cameras_dataset(n=sizes["Cameras"], seed=seed), CAMERAS_RADII
        ),
    }


def zoom_in_series() -> Dict[str, Tuple[str, List[float]]]:
    """Figures 11-13: descending radii; each solution is adapted from the
    Greedy-DisC solution for the immediately larger radius."""
    return {
        "Clustered": ("Clustered", [0.07, 0.06, 0.05, 0.04, 0.03, 0.02]),
        "Cities": ("Cities", [0.01, 0.0075, 0.005, 0.0025, 0.001]),
    }


def zoom_out_series() -> Dict[str, Tuple[str, List[float]]]:
    """Figures 14-16: ascending radii; adapted from the Greedy-DisC
    solution for the immediately smaller radius."""
    return {
        "Clustered": ("Clustered", [0.01, 0.02, 0.03, 0.04, 0.05, 0.06]),
        "Cities": ("Cities", [0.0025, 0.005, 0.0075, 0.01, 0.0125]),
    }

#!/usr/bin/env python
"""Quickstart: DisC-diversify a query result and zoom.

Covers the library's core loop in ~40 lines:

1. generate a dataset (stand-in for a query result),
2. compute an r-DisC diverse subset — every object is within r of a
   selected object, selected objects are pairwise farther than r,
3. verify the two Definition 1 conditions,
4. zoom in (more, finer-grained results) and out (fewer, coarser).

Run:  python examples/quickstart.py
"""

from repro import DiscSession, uniform_dataset

def main() -> None:
    # 1. A "query result": 2000 points uniform in [0,1]^2.
    data = uniform_dataset(n=2000, dim=2, seed=7)
    print(f"dataset: {data}")

    # 2. Index once (M-tree, the paper's substrate), then select.
    session = DiscSession(data)
    result = session.select(radius=0.1)
    print(f"\nr=0.10  ->  {result.size} diverse objects "
          f"({result.algorithm}, {result.node_accesses} node accesses)")

    # 3. Both DisC conditions hold by construction; verify anyway.
    report = session.verify()
    print(f"verification: {report}")

    # 4a. Zoom in: the user wants more detail.  All previous selections
    #     are kept (Lemma 5(i)); new representatives fill the gaps.
    finer = session.zoom_in(0.05)
    kept = set(result.selected) <= set(finer.selected)
    print(f"\nzoom-in to r=0.05  ->  {finer.size} objects "
          f"(previous solution kept: {kept}, "
          f"{finer.node_accesses} node accesses)")

    # 4b. Zoom out: back to a coarse overview.
    coarser = session.zoom_out(0.2)
    overlap = len(set(coarser.selected) & set(finer.selected))
    print(f"zoom-out to r=0.20 ->  {coarser.size} objects "
          f"({overlap} shared with the previous view)")
    print(f"verification: {session.verify()}")

    # 5. The same loop as a multi-user HTTP service (shared dataset
    #    registry, cross-session adjacency cache, request coalescing):
    #
    #        python -m repro serve --datasets uniform,cities
    #        curl -s localhost:8722/select -d \
    #            '{"dataset": "uniform", "radius": 0.1}'
    #
    #    See repro.service and `python -m repro bench --service`.


if __name__ == "__main__":
    main()

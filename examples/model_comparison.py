#!/usr/bin/env python
"""Comparing DisC with MaxMin, MaxSum and k-medoids (paper Figure 6).

Runs every diversification model on the same clustered dataset with a
matched subset size k and renders each selection as an ASCII scatter so
the paper's qualitative observations are visible in the terminal:

* MaxSum picks the outskirts and ignores interior clusters,
* k-medoids picks cluster centres and ignores outliers,
* MaxMin spreads out but under-represents dense areas,
* DisC (and r-C) cover the entire dataset.

Run:  python examples/model_comparison.py
"""

from repro import clustered_dataset
from repro.baselines import solution_summary
from repro.experiments import model_comparison, radius_for_target_size
from repro.experiments.plotting import ascii_scatter


def main() -> None:
    data = clustered_dataset(n=2000, dim=2, seed=42)
    radius = radius_for_target_size(data, 15, low=0.05, high=0.6, tolerance=1)
    print(f"dataset: {data}\nradius giving k~15: r={radius:.3f}\n")

    table = model_comparison(data, radius)
    for name, row in table.items():
        print(ascii_scatter(
            data.points, row["selected"],
            title=f"{name}  (k={row['size']})", width=66, height=20,
        ))
        print(f"  fMin={row['fmin']:.3f}  fSum={row['fsum']:.1f}  "
              f"coverage={row['coverage']:.1%}  "
              f"repr.error={row['representation_error']:.4f}\n")

    print("reading guide: '@' selected, 'o' dense area, '.' data point")
    print("DisC is the only model with 100% coverage at radius r —")
    print("every camera/city/point has a representative within r.")


if __name__ == "__main__":
    main()

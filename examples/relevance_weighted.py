#!/usr/bin/env python
"""Integrating relevance with DisC diversity (paper Section 8).

The paper sketches two ways to combine relevance scores with DisC
diversity and leaves them as future work; this library implements both,
and this example shows them side by side on a clustered dataset whose
"relevance" decays with the distance from a query point:

1. **Weighted DisC** — relevance as object weights; the greedy picks
   heavy objects first while still covering everything,
2. **Multi-radius DisC** — relevance as per-object radii; relevant
   regions tolerate only nearby representatives, so they receive more
   of them.

Also demonstrates the third future-work item: **streaming DisC** over
the same objects arriving one by one.

Run:  python examples/relevance_weighted.py
"""

import numpy as np

from repro import clustered_dataset
from repro.core.extensions import (
    StreamingDisC,
    multiradius_disc,
    radii_from_relevance,
    weighted_disc,
)
from repro.experiments.plotting import ascii_scatter
from repro.index import BruteForceIndex


def main() -> None:
    data = clustered_dataset(n=1500, dim=2, seed=3)
    query_point = np.array([0.3, 0.7])
    # Relevance: high near the query point, decaying with distance.
    distances = np.linalg.norm(data.points - query_point, axis=1)
    relevance = np.exp(-3.0 * distances)

    radius = 0.12
    index = BruteForceIndex(data.points, data.metric, cache_radius=radius)

    # --- 1. Weighted DisC -------------------------------------------------
    print("1) Weighted DisC: maximise selected relevance, stay diverse\n")
    for alpha in (0.0, 1.0):
        result = weighted_disc(index, radius, relevance, alpha=alpha)
        mean_rel = relevance[result.selected].mean()
        print(f"   alpha={alpha:.1f}: {result.size:3d} objects, "
              f"mean relevance {mean_rel:.3f}")
    result = weighted_disc(index, radius, relevance, alpha=1.0)
    print(ascii_scatter(data.points, result.selected,
                        title="   alpha=1.0 selection ('@'); query at upper left",
                        width=64, height=18))

    # --- 2. Multi-radius DisC ---------------------------------------------
    print("\n2) Multi-radius DisC: relevant areas get more representatives\n")
    radii = radii_from_relevance(relevance, r_min=0.05, r_max=0.25)
    result = multiradius_disc(index, radii)
    near = sum(1 for s in result.selected if distances[s] < 0.35)
    far = result.size - near
    print(f"   {result.size} representatives; {near} within 0.35 of the "
          f"query vs {far} elsewhere")
    print(ascii_scatter(data.points, result.selected,
                        title="   multi-radius selection", width=64, height=18))

    # --- 3. Streaming DisC -------------------------------------------------
    print("\n3) Streaming DisC: maintain diversity as objects arrive\n")
    stream = StreamingDisC(radius=radius)
    for i, point in enumerate(data.points):
        stream.add(point)
        if i in (99, 499, 1499 - 1):
            print(f"   after {i + 1:4d} arrivals: {stream.size:3d} selected")
    rebuilt = stream.rebuild()
    print(f"   offline consolidation: {rebuilt.size} "
          f"(online kept {stream.size})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Diversifying a categorical camera catalogue (paper Figure 2).

The paper's second running example: a user browses 579 digital cameras
described by 7 categorical attributes, compared under the Hamming
distance.  DisC shows a diverse overview; local zooming-in around one
interesting camera reveals its close variants (same brand/line, one or
two attributes different) — exactly the paper's Figure 2 interaction.

Run:  python examples/camera_catalog.py
"""

from repro import DiscSession, cameras_dataset


def show_camera(data, object_id, indent="  "):
    record = data.decode(object_id)
    print(f"{indent}#{object_id:<4} " + " | ".join(
        f"{record[a]}" for a in data.attributes
    ))


def main() -> None:
    data = cameras_dataset(seed=11)
    print(f"catalogue: {data.n} cameras x {data.dim} attributes "
          f"({', '.join(data.attributes)})\n")

    session = DiscSession(data)

    # Radius 5 under Hamming: representatives differ in >5 of 7 attrs.
    overview = session.select(radius=5)
    print(f"r=5 -> {overview.size} maximally different cameras:")
    for object_id in overview.selected:
        show_camera(data, object_id)

    # The user finds the first camera interesting: zoom in locally to
    # radius 2 to see its close variants.
    focus = overview.selected[0]
    print(f"\nlocal zoom-in around camera #{focus} (r'=2):")
    local = session.local_zoom(focus, 2)
    for object_id in local.meta["inside"]:
        show_camera(data, object_id)
    print(f"\n  ({local.meta['area_size']} cameras in the area, "
          f"{len(local.meta['inside'])} representatives shown; "
          "the rest of the overview is unchanged)")

    # Global ladder: how the solution shrinks with the radius (Table 3d).
    print("\nsolution size ladder (Table 3d shape):")
    for radius in (1, 2, 3, 4, 5, 6):
        result = session.select(radius=radius)
        print(f"  r={radius}: {result.size:4d} cameras")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Interactive-style map zooming on the Cities dataset (paper Figure 1).

The paper's running example: searching for cities in Greece, diversified
by geographic location.  This script renders the full flow as ASCII maps:

* the initial r-DisC diverse overview,
* global zoom-in (more cities appear, old ones stay),
* global zoom-out (fewer cities, mostly a subset of the overview),
* *local* zoom-in around one selected city (Figure 1d): only that
  city's neighborhood gains detail.

Run:  python examples/cities_zoom.py
"""

from repro import DiscSession, cities_dataset
from repro.experiments.plotting import ascii_scatter


def show(points, result, caption):
    print(ascii_scatter(points, result.selected, title=caption, width=70, height=22))
    print(f"  selected: {result.size} objects   "
          f"node accesses: {result.node_accesses}\n")


def main() -> None:
    data = cities_dataset(n=3000, seed=7)
    session = DiscSession(data)

    overview = session.select(radius=0.08)
    show(data.points, overview, "Initial diverse overview (r=0.08)")

    zoomed_in = session.zoom_in(0.04)
    assert set(overview.selected) <= set(zoomed_in.selected)
    show(data.points, zoomed_in, "Global zoom-in (r=0.04): previous cities kept")

    zoomed_out = session.zoom_out(0.16)
    show(data.points, zoomed_out, "Global zoom-out (r=0.16): coarse view")

    # Local zoom: drill into the first selected city's area only.
    session.last_result = overview
    focus = overview.selected[0]
    local = session.local_zoom(focus, 0.02)
    show(data.points, local, f"Local zoom-in around city #{focus} (r'=0.02)")
    print(f"  area contained {local.meta['area_size']} cities; "
          f"{len(local.meta['inside'])} now represent it, the rest of the "
          "map is unchanged")


if __name__ == "__main__":
    main()
